#pragma once
/// \file iterative.hpp
/// \brief Krylov solvers: preconditioned CG (symmetric systems) and
/// BiCGSTAB (the advection-coupled, non-symmetric RC systems).
///
/// Both solvers exist in two forms: the workspace overloads run fully
/// allocation-free against a caller-owned KrylovWorkspace (the transient
/// thermal loop binds one per solver at construction), and the plain
/// overloads allocate a scratch workspace internally for one-off solves.

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sparse {

/// Result of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::int32_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - A x||_2
};

/// Options shared by the Krylov solvers.
struct IterativeOptions {
  double rel_tolerance = 1e-10;    ///< on ||r||_2 / ||b||_2
  std::int32_t max_iterations = 2000;
};

/// Preallocated scratch vectors for cg()/bicgstab(). resize() is a no-op
/// when the size already matches, so a workspace bound once keeps the
/// solver hot path free of heap allocations.
class KrylovWorkspace {
 public:
  /// Size every buffer for an n-dimensional system.
  void resize(std::size_t n);

  std::size_t size() const { return n_; }

  std::vector<double> r, r0, p, v, s, t, ph, sh;

 private:
  std::size_t n_ = 0;
};

/// Preconditioned conjugate gradient; requires A symmetric positive
/// definite. \p x holds the initial guess on entry and the solution on
/// exit. The workspace overload performs no heap allocations once \p ws
/// is sized.
IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts, KrylovWorkspace& ws);
IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems. \p x holds the
/// initial guess on entry and the solution on exit. The workspace
/// overload performs no heap allocations once \p ws is sized.
IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts, KrylovWorkspace& ws);
IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts = {});

}  // namespace tac3d::sparse
