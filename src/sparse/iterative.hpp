#pragma once
/// \file iterative.hpp
/// \brief Krylov solvers: preconditioned CG (symmetric systems) and
/// BiCGSTAB (the advection-coupled, non-symmetric RC systems).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/preconditioner.hpp"

namespace tac3d::sparse {

/// Result of an iterative solve.
struct IterativeResult {
  bool converged = false;
  std::int32_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - A x||_2
};

/// Options shared by the Krylov solvers.
struct IterativeOptions {
  double rel_tolerance = 1e-10;    ///< on ||r||_2 / ||b||_2
  std::int32_t max_iterations = 2000;
};

/// Preconditioned conjugate gradient; requires A symmetric positive
/// definite. \p x holds the initial guess on entry and the solution on
/// exit.
IterativeResult cg(const CsrMatrix& a, std::span<const double> b,
                   std::span<double> x, const Preconditioner& m,
                   const IterativeOptions& opts = {});

/// Preconditioned BiCGSTAB for general square systems. \p x holds the
/// initial guess on entry and the solution on exit.
IterativeResult bicgstab(const CsrMatrix& a, std::span<const double> b,
                         std::span<double> x, const Preconditioner& m,
                         const IterativeOptions& opts = {});

}  // namespace tac3d::sparse
