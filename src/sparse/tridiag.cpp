#include "sparse/tridiag.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tac3d::sparse {

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  const std::size_t n = diag.size();
  require(lower.size() == n && upper.size() == n && rhs.size() == n,
          "solve_tridiagonal: size mismatch");
  require(n >= 1, "solve_tridiagonal: empty system");

  std::vector<double> c(n), d(n);
  double pivot = diag[0];
  if (pivot == 0.0 || !std::isfinite(pivot)) {
    throw NumericalError("solve_tridiagonal: zero pivot at row 0");
  }
  c[0] = upper[0] / pivot;
  d[0] = rhs[0] / pivot;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = diag[i] - lower[i] * c[i - 1];
    if (pivot == 0.0 || !std::isfinite(pivot)) {
      throw NumericalError("solve_tridiagonal: zero pivot");
    }
    c[i] = upper[i] / pivot;
    d[i] = (rhs[i] - lower[i] * d[i - 1]) / pivot;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    d[i] -= c[i] * d[i + 1];
  }
  return d;
}

}  // namespace tac3d::sparse
