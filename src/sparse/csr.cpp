#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::sparse {

CsrMatrix CsrMatrix::from_triplets(std::int32_t rows, std::int32_t cols,
                                   std::vector<Triplet> entries) {
  require(rows > 0 && cols > 0, "CsrMatrix: dimensions must be positive");
  for (const Triplet& t : entries) {
    require(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
            "CsrMatrix: triplet index out of range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    ++m.row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
    i = j;
  }
  for (std::int32_t r = 0; r < rows; ++r) {
    m.row_ptr_[static_cast<std::size_t>(r) + 1] +=
        m.row_ptr_[static_cast<std::size_t>(r)];
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  require(static_cast<std::int32_t>(x.size()) == cols_ &&
              static_cast<std::int32_t>(y.size()) == rows_,
          "CsrMatrix::multiply: size mismatch");
  for (std::int32_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  require(static_cast<std::int32_t>(x.size()) == rows_ &&
              static_cast<std::int32_t>(y.size()) == cols_,
          "CsrMatrix::multiply_transpose: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::int32_t r = 0; r < rows_; ++r) {
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * x[r];
    }
  }
}

std::int64_t CsrMatrix::find(std::int32_t row, std::int32_t col) const {
  if (row < 0 || row >= rows_) return -1;
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return -1;
  return it - col_idx_.begin();
}

double& CsrMatrix::coeff_ref(std::int32_t row, std::int32_t col) {
  const std::int64_t k = find(row, col);
  require(k >= 0, "CsrMatrix::coeff_ref: entry not in sparsity pattern");
  return values_[static_cast<std::size_t>(k)];
}

double CsrMatrix::coeff(std::int32_t row, std::int32_t col) const {
  const std::int64_t k = find(row, col);
  return k >= 0 ? values_[static_cast<std::size_t>(k)] : 0.0;
}

bool CsrMatrix::has_entry(std::int32_t row, std::int32_t col) const {
  return find(row, col) >= 0;
}

void CsrMatrix::set_zero() { std::fill(values_.begin(), values_.end(), 0.0); }

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(static_cast<std::size_t>(std::min(rows_, cols_)), 0.0);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(d.size()); ++r) {
    d[r] = coeff(r, r);
  }
  return d;
}

double CsrMatrix::norm_inf() const {
  double best = 0.0;
  for (std::int32_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += std::abs(values_[k]);
    }
    best = std::max(best, sum);
  }
  return best;
}

bool CsrMatrix::is_diagonally_dominant(double eps) const {
  for (std::int32_t r = 0; r < rows_; ++r) {
    double diag = 0.0;
    double off = 0.0;
    for (std::int32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        diag = std::abs(values_[k]);
      } else {
        off += std::abs(values_[k]);
      }
    }
    if (diag + eps < off) return false;
  }
  return true;
}

}  // namespace tac3d::sparse
