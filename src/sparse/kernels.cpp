#include "sparse/kernels.hpp"

#include <cmath>

#include "common/error.hpp"

namespace tac3d::sparse {

namespace {

/// Shared size check for the n-vector kernels.
inline void check(bool ok, const char* what) { require(ok, what); }

}  // namespace

void spmv(const CsrMatrix& a, std::span<const double> x,
          std::span<double> y) {
  check(static_cast<std::int32_t>(x.size()) == a.cols() &&
            static_cast<std::int32_t>(y.size()) == a.rows(),
        "spmv: size mismatch");
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();
  const double* __restrict v = a.values().data();
  const double* __restrict xs = x.data();
  double* __restrict ys = y.data();
  const std::int32_t n = a.rows();
  for (std::int32_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += v[k] * xs[ci[k]];
    }
    ys[r] = acc;
  }
}

double spmv_dot(const CsrMatrix& a, std::span<const double> x,
                std::span<double> y, std::span<const double> w) {
  check(static_cast<std::int32_t>(x.size()) == a.cols() &&
            static_cast<std::int32_t>(y.size()) == a.rows() &&
            w.size() == y.size(),
        "spmv_dot: size mismatch");
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();
  const double* __restrict v = a.values().data();
  const double* __restrict xs = x.data();
  const double* __restrict ws = w.data();
  double* __restrict ys = y.data();
  const std::int32_t n = a.rows();
  double acc_dot = 0.0;
  for (std::int32_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += v[k] * xs[ci[k]];
    }
    ys[r] = acc;
    acc_dot += ws[r] * acc;
  }
  return acc_dot;
}

double spmv_dot2(const CsrMatrix& a, std::span<const double> x,
                 std::span<double> y, std::span<const double> w, double* wy) {
  check(static_cast<std::int32_t>(x.size()) == a.cols() &&
            static_cast<std::int32_t>(y.size()) == a.rows() &&
            w.size() == y.size() && wy != nullptr,
        "spmv_dot2: size mismatch");
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();
  const double* __restrict v = a.values().data();
  const double* __restrict xs = x.data();
  const double* __restrict ws = w.data();
  double* __restrict ys = y.data();
  const std::int32_t n = a.rows();
  double acc_yy = 0.0;
  double acc_wy = 0.0;
  for (std::int32_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      acc += v[k] * xs[ci[k]];
    }
    ys[r] = acc;
    acc_yy += acc * acc;
    acc_wy += ws[r] * acc;
  }
  *wy = acc_wy;
  return acc_yy;
}

double residual(const CsrMatrix& a, std::span<const double> x,
                std::span<const double> b, std::span<double> r) {
  check(static_cast<std::int32_t>(x.size()) == a.cols() &&
            static_cast<std::int32_t>(r.size()) == a.rows() &&
            b.size() == r.size(),
        "residual: size mismatch");
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();
  const double* __restrict v = a.values().data();
  const double* __restrict xs = x.data();
  const double* __restrict bs = b.data();
  double* __restrict rs = r.data();
  const std::int32_t n = a.rows();
  double acc_dot = 0.0;
  for (std::int32_t row = 0; row < n; ++row) {
    double acc = 0.0;
    for (std::int32_t k = rp[row]; k < rp[row + 1]; ++k) {
      acc += v[k] * xs[ci[k]];
    }
    const double res = bs[row] - acc;
    rs[row] = res;
    acc_dot += res * res;
  }
  return acc_dot;
}

double residual_norms(const CsrMatrix& a, std::span<const double> x,
                      std::span<const double> b, std::span<double> r,
                      double* bb) {
  check(static_cast<std::int32_t>(x.size()) == a.cols() &&
            static_cast<std::int32_t>(r.size()) == a.rows() &&
            b.size() == r.size() && bb != nullptr,
        "residual_norms: size mismatch");
  const std::int32_t* __restrict rp = a.row_ptr().data();
  const std::int32_t* __restrict ci = a.col_idx().data();
  const double* __restrict v = a.values().data();
  const double* __restrict xs = x.data();
  const double* __restrict bs = b.data();
  double* __restrict rs = r.data();
  const std::int32_t n = a.rows();
  double acc_rr = 0.0;
  double acc_bb = 0.0;
  for (std::int32_t row = 0; row < n; ++row) {
    double acc = 0.0;
    for (std::int32_t k = rp[row]; k < rp[row + 1]; ++k) {
      acc += v[k] * xs[ci[k]];
    }
    const double bi = bs[row];
    const double res = bi - acc;
    rs[row] = res;
    acc_rr += res * res;
    acc_bb += bi * bi;
  }
  *bb = acc_bb;
  return acc_rr;
}

double dot(std::span<const double> a, std::span<const double> b) {
  check(a.size() == b.size(), "dot: size mismatch");
  const double* __restrict as = a.data();
  const double* __restrict bs = b.data();
  double acc = 0.0;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) acc += as[i] * bs[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check(x.size() == y.size(), "axpy: size mismatch");
  const double* __restrict xs = x.data();
  double* __restrict ys = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void xpby(std::span<const double> x, double beta, std::span<double> y) {
  check(x.size() == y.size(), "xpby: size mismatch");
  const double* __restrict xs = x.data();
  double* __restrict ys = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] = xs[i] + beta * ys[i];
}

double waxpby(std::span<double> w, std::span<const double> x, double alpha,
              std::span<const double> y) {
  check(w.size() == x.size() && y.size() == x.size(),
        "waxpby: size mismatch");
  double* __restrict ws = w.data();
  const double* __restrict xs = x.data();
  const double* __restrict ys = y.data();
  const std::size_t n = w.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double wi = xs[i] + alpha * ys[i];
    ws[i] = wi;
    acc += wi * wi;
  }
  return acc;
}

void axpy_product(double alpha, std::span<const double> a,
                  std::span<const double> b, std::span<double> y) {
  check(a.size() == y.size() && b.size() == y.size(),
        "axpy_product: size mismatch");
  const double* __restrict as = a.data();
  const double* __restrict bs = b.data();
  double* __restrict ys = y.data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] += alpha * as[i] * bs[i];
}

void bicgstab_p_update(std::span<const double> r, double beta, double omega,
                       std::span<const double> v, std::span<double> p) {
  check(r.size() == p.size() && v.size() == p.size(),
        "bicgstab_p_update: size mismatch");
  const double* __restrict rs = r.data();
  const double* __restrict vs = v.data();
  double* __restrict ps = p.data();
  const std::size_t n = p.size();
  for (std::size_t i = 0; i < n; ++i) {
    ps[i] = rs[i] + beta * (ps[i] - omega * vs[i]);
  }
}

double bicgstab_final_update(double alpha, std::span<const double> ph,
                             double omega, std::span<const double> sh,
                             std::span<const double> s,
                             std::span<const double> t, std::span<double> x,
                             std::span<double> r) {
  check(ph.size() == x.size() && sh.size() == x.size() &&
            s.size() == x.size() && t.size() == x.size() &&
            r.size() == x.size(),
        "bicgstab_final_update: size mismatch");
  const double* __restrict phs = ph.data();
  const double* __restrict shs = sh.data();
  const double* __restrict ss = s.data();
  const double* __restrict ts = t.data();
  double* __restrict xs = x.data();
  double* __restrict rs = r.data();
  const std::size_t n = x.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] += alpha * phs[i] + omega * shs[i];
    const double ri = ss[i] - omega * ts[i];
    rs[i] = ri;
    acc += ri * ri;
  }
  return acc;
}

}  // namespace tac3d::sparse
