#pragma once
/// \file tridiag.hpp
/// \brief Thomas algorithm for tridiagonal systems (1-D validation
/// problems and per-channel marching schemes).

#include <span>
#include <vector>

namespace tac3d::sparse {

/// Solve a tridiagonal system in O(n).
///
/// \param lower sub-diagonal, size n (lower[0] unused)
/// \param diag  main diagonal, size n
/// \param upper super-diagonal, size n (upper[n-1] unused)
/// \param rhs   right-hand side, size n
/// \returns solution vector of size n
/// \throws NumericalError on zero pivot.
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs);

}  // namespace tac3d::sparse
