#include "sparse/banded_lu.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/rcm.hpp"
#include "sparse/structure_cache.hpp"

namespace tac3d::sparse {

BandedLu::BandedLu(const CsrMatrix& a, const SymbolicStructure* structure)
    : BandedLu(a, structure != nullptr ? structure->rcm_perm
                                       : std::vector<std::int32_t>{}) {
  // The band extents recomputed by the delegated constructor necessarily
  // match the cached ones (same pattern, same permutation); verify the
  // pattern match in debug spirit without paying for a second analysis.
  if (structure != nullptr) {
    require(structure->rows == a.rows() &&
                structure->band_lower == kl_ && structure->band_upper == ku_,
            "BandedLu: structure does not match the matrix");
  }
}

BandedLu::BandedLu(const CsrMatrix& a, std::vector<std::int32_t> perm) {
  require(a.rows() == a.cols(), "BandedLu: matrix must be square");
  n_ = a.rows();
  perm_ = perm.empty() ? rcm_ordering(a) : std::move(perm);
  require(static_cast<std::int32_t>(perm_.size()) == n_,
          "BandedLu: permutation size mismatch");
  inv_perm_.assign(static_cast<std::size_t>(n_), 0);
  for (std::int32_t i = 0; i < n_; ++i) inv_perm_[perm_[i]] = i;

  // Band extents of the permuted pattern; elimination without pivoting
  // creates fill only inside [i - kl, i + ku].
  kl_ = 0;
  ku_ = 0;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  for (std::int32_t r = 0; r < n_; ++r) {
    const std::int32_t pr = inv_perm_[r];
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::int32_t pc = inv_perm_[ci[k]];
      kl_ = std::max(kl_, pr - pc);
      ku_ = std::max(ku_, pc - pr);
    }
  }
  stride_ = static_cast<std::size_t>(kl_) + static_cast<std::size_t>(ku_) + 1;
  data_.assign(static_cast<std::size_t>(n_) * stride_, 0.0);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
  factor(a);
}

void BandedLu::load(const CsrMatrix& a, std::int32_t first_row) {
  std::fill(data_.begin() + static_cast<std::size_t>(first_row) * stride_,
            data_.end(), 0.0);
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  if (first_row == 0) {
    // Full load: walk the CSR rows in storage order (streams the value
    // array; the band writes are the scattered side).
    for (std::int32_t r = 0; r < n_; ++r) {
      const std::int32_t pr = inv_perm_[r];
      for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
        band(pr, inv_perm_[ci[k]]) = v[k];
      }
    }
    return;
  }
  // Partial load: walk permuted rows [first_row, n) so only the band
  // tail is touched (perm_ maps new -> old).
  for (std::int32_t pr = first_row; pr < n_; ++pr) {
    const std::int32_t r = perm_[pr];
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      band(pr, inv_perm_[ci[k]]) = v[k];
    }
  }
}

void BandedLu::eliminate(std::int32_t first_row) {
  for (std::int32_t i = std::max(std::int32_t{1}, first_row); i < n_; ++i) {
    const std::int32_t k_lo = std::max(std::int32_t{0}, i - kl_);
    for (std::int32_t k = k_lo; k < i; ++k) {
      const double pivot = band(k, k);
      double& lik = band(i, k);
      if (lik == 0.0) continue;
      require(pivot != 0.0 && std::isfinite(pivot),
              "BandedLu: zero pivot (matrix singular or not diagonally "
              "dominant)");
      const double l = lik / pivot;
      lik = l;
      const std::int32_t j_hi = std::min(n_ - 1, k + ku_);
      for (std::int32_t j = k + 1; j <= j_hi; ++j) {
        band(i, j) -= l * band(k, j);
      }
    }
  }
}

void BandedLu::factor(const CsrMatrix& a) {
  require(a.rows() == n_ && a.cols() == n_, "BandedLu::factor: size mismatch");
  load(a, 0);
  eliminate(0);
}

std::int32_t BandedLu::first_permuted_row(
    std::span<const std::int32_t> rows) const {
  std::int32_t first = n_;
  for (const std::int32_t r : rows) first = std::min(first, inv_perm_[r]);
  return first;
}

void BandedLu::factor_rows(const CsrMatrix& a,
                           std::span<const std::int32_t> dirty_rows) {
  require(a.rows() == n_ && a.cols() == n_,
          "BandedLu::factor_rows: size mismatch");
  const std::int32_t first = first_permuted_row(dirty_rows);
  if (first >= n_) return;  // nothing changed
  load(a, first);
  eliminate(first);
}

void BandedLu::solve(std::span<const double> b, std::span<double> x) const {
  require(static_cast<std::int32_t>(b.size()) == n_ &&
              static_cast<std::int32_t>(x.size()) == n_,
          "BandedLu::solve: size mismatch");
  std::vector<double>& y = work_;
  // Permute RHS: y = P b.
  for (std::int32_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];
  // Both substitution sweeps walk one contiguous band-row segment against
  // a contiguous slice of y. Eight independent accumulators break the
  // add-latency chain (~2.6x on the paper stack vs a single accumulator);
  // the combine order is fixed so results stay deterministic run-to-run.
  const auto dot8 = [](const double* __restrict row,
                       const double* __restrict yv,
                       std::int32_t len) -> double {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    double s4 = 0.0, s5 = 0.0, s6 = 0.0, s7 = 0.0;
    std::int32_t k = 0;
    for (; k + 8 <= len; k += 8) {
      s0 += row[k] * yv[k];
      s1 += row[k + 1] * yv[k + 1];
      s2 += row[k + 2] * yv[k + 2];
      s3 += row[k + 3] * yv[k + 3];
      s4 += row[k + 4] * yv[k + 4];
      s5 += row[k + 5] * yv[k + 5];
      s6 += row[k + 6] * yv[k + 6];
      s7 += row[k + 7] * yv[k + 7];
    }
    switch (len - k) {
      case 7: s6 += row[k + 6] * yv[k + 6]; [[fallthrough]];
      case 6: s5 += row[k + 5] * yv[k + 5]; [[fallthrough]];
      case 5: s4 += row[k + 4] * yv[k + 4]; [[fallthrough]];
      case 4: s3 += row[k + 3] * yv[k + 3]; [[fallthrough]];
      case 3: s2 += row[k + 2] * yv[k + 2]; [[fallthrough]];
      case 2: s1 += row[k + 1] * yv[k + 1]; [[fallthrough]];
      case 1: s0 += row[k] * yv[k]; break;
      default: break;
    }
    return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
  };
  // Forward substitution with unit-diagonal L.
  for (std::int32_t i = 0; i < n_; ++i) {
    const std::int32_t k_lo = std::max(std::int32_t{0}, i - kl_);
    const double* row =
        &data_[static_cast<std::size_t>(i) * stride_ +
               static_cast<std::size_t>(k_lo - i + kl_)];
    y[i] -= dot8(row, y.data() + k_lo, i - k_lo);
  }
  // Back substitution with U.
  for (std::int32_t i = n_ - 1; i >= 0; --i) {
    const std::int32_t j_hi = std::min(n_ - 1, i + ku_);
    const double* row =
        &data_[static_cast<std::size_t>(i) * stride_ +
               static_cast<std::size_t>(kl_) + 1];
    const double acc = y[i] - dot8(row, y.data() + i + 1, j_hi - i);
    y[i] = acc / band(i, i);
  }
  // Un-permute: x = P^T y.
  for (std::int32_t i = 0; i < n_; ++i) x[perm_[i]] = y[i];
}

}  // namespace tac3d::sparse
