#pragma once
/// \file refresh.hpp
/// \brief Staleness-aware refresh contract between in-place matrix value
/// updates and the solvers bound to them.
///
/// A flow-rate change rewrites a small, known subset of the system
/// matrix's values (see thermal::ThermalOperator). Rebuilding the
/// factorization or preconditioner on every such change is what made
/// flow-modulated stepping ~85x slower than fixed-flow stepping, so the
/// solvers instead receive a ValueUpdate describing what changed and
/// decide per strategy:
///
///  - BiCGSTAB+ILU(0) keeps the stale factors (a preconditioner only
///    steers convergence; the solve tolerance still guarantees the
///    answer) and refactors only when the iteration count degrades past
///    RefreshPolicy::max_iteration_growth or the distinct-dirty-row
///    fraction exceeds RefreshPolicy::max_dirty_fraction.
///  - BiCGSTAB+Jacobi refreshes exactly the dirty rows of the inverse
///    diagonal (exact and O(dirty)).
///  - BandedLu re-eliminates only from the first dirty permuted row
///    (exact: LU rows above the first changed row are unaffected).

#include <cstdint>
#include <span>

namespace tac3d::sparse {

/// Description of an in-place value update on an unchanged sparsity
/// pattern: which rows changed and how much of the matrix that is.
struct ValueUpdate {
  /// Rows whose stored values changed (unsorted, no duplicates). An
  /// empty span with dirty_fraction > 0 means "unknown rows" and forces
  /// a full refresh.
  std::span<const std::int32_t> rows{};
  /// Changed entries / nnz for this update.
  double dirty_fraction = 0.0;
};

/// When should a solver rebuild its factorization/preconditioner after
/// in-place value updates?
struct RefreshPolicy {
  /// false restores the eager pre-operator behavior: every value update
  /// triggers a full refactor (used as the reference in tests/benches).
  bool lazy = true;
  /// Refactor once the fraction of distinct rows dirtied since the last
  /// refactor exceeds this bound (iterative solvers only; the direct
  /// banded solver is always refreshed exactly).
  double max_dirty_fraction = 0.5;
  /// Refactor when a solve takes more than
  ///   max_iteration_growth * iterations-after-last-refactor
  ///     + iteration_slack
  /// iterations while stale.
  double max_iteration_growth = 3.0;
  std::int32_t iteration_slack = 8;
  /// Banded-LU factor-slot cache size: the solver keeps up to this many
  /// complete factorizations keyed by the flow-dependent matrix values,
  /// so revisiting a flow state (pump levels cycle through a small
  /// discrete set) switches factors in O(dirty) instead of
  /// re-eliminating the band. 16 covers PumpModel::table1()'s default
  /// level count; <= 1 disables the cache (storage is band_bytes *
  /// factor_slots, so shrink it for very large stacks). Iterative
  /// solvers ignore this.
  std::int32_t factor_slots = 16;

  static RefreshPolicy eager() {
    RefreshPolicy p;
    p.lazy = false;
    return p;
  }
};

/// Counters a LinearSolver keeps about its refresh/solve behavior.
struct SolverStats {
  std::uint64_t solves = 0;
  std::uint64_t iterations = 0;   ///< cumulative Krylov iterations (0 = direct)
  std::uint64_t refactors = 0;    ///< full factorization/preconditioner rebuilds
  std::uint64_t partial_refactors = 0;  ///< band-tail / dirty-row refreshes
  std::uint64_t deferred_updates = 0;   ///< updates absorbed without refactor
  std::uint64_t factor_cache_hits = 0;  ///< updates served by a cached factor slot
  std::uint64_t retries = 0;  ///< solves redone after a stale-factor failure
  std::int32_t last_iterations = 0;
  /// Distinct rows dirtied since the last (full) refactor / rows.
  double pending_dirty_fraction = 0.0;
};

}  // namespace tac3d::sparse
