#pragma once
/// \file solver.hpp
/// \brief Facade over the direct and iterative solvers so the thermal
/// module can switch strategies via configuration.
///
/// Solvers allocate everything they need at bind time (construction):
/// factorization storage, preconditioner factors and Krylov scratch
/// vectors. update_values() and solve() then run without touching the
/// heap, which keeps the transient thermal stepping loop allocation-
/// free. An optional shared SymbolicStructure (see structure_cache.hpp)
/// lets solvers bound to matrices with the same sparsity pattern skip
/// the symbolic analysis.
///
/// Value updates come in two flavors: the legacy full update_values(a)
/// eagerly refreshes the factorization, while the incremental overload
/// takes a ValueUpdate (which rows changed, how dirty the matrix is) and
/// lets each strategy refresh lazily or partially under its
/// RefreshPolicy (see refresh.hpp).

#include <cstdint>
#include <memory>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/refresh.hpp"
#include "sparse/structure_cache.hpp"

namespace tac3d::sparse {

/// Solver strategy.
enum class SolverKind {
  kBandedLu,        ///< RCM + banded direct LU, cached factorization
  kBicgstabIlu0,    ///< BiCGSTAB with ILU(0)
  kBicgstabJacobi,  ///< BiCGSTAB with Jacobi
};

/// A linear solver bound to one matrix; update_values() refreshes the
/// factorization/preconditioner after in-place value changes on the same
/// sparsity pattern.
class LinearSolver {
 public:
  virtual ~LinearSolver() = default;

  /// Eagerly refresh internal state after the bound matrix's values
  /// changed. Never allocates: factors and preconditioners update in
  /// place.
  virtual void update_values(const CsrMatrix& a) = 0;

  /// Incremental notification: the bound matrix's values changed only in
  /// \p update.rows. The solver refreshes under its RefreshPolicy —
  /// lazily (iterative: keep stale factors until they hurt), partially
  /// (Jacobi dirty rows, banded tail re-elimination) or fully. Never
  /// allocates. The default forwards to the eager update_values(a).
  virtual void update_values(const CsrMatrix& a, const ValueUpdate& update) {
    (void)update;
    update_values(a);
  }

  /// Solve A x = b; \p x may carry a warm-start guess for iterative
  /// solvers (ignored by direct ones). Never allocates.
  virtual void solve(std::span<const double> b, std::span<double> x) = 0;

  /// Does solve() exploit the initial content of x? (False for direct
  /// solvers — callers can skip computing a warm-start guess.)
  virtual bool uses_initial_guess() const { return false; }

  /// Staleness policy for the incremental update_values overload.
  virtual void set_refresh_policy(const RefreshPolicy& policy) {
    (void)policy;
  }

  /// Relative residual tolerance ||r||/||b|| for iterative strategies
  /// (no-op for direct solvers, which are exact). Default 1e-12 — far
  /// below any physical scale, so callers whose accuracy budget is set
  /// elsewhere (e.g. a time integrator's truncation error) can trade
  /// unneeded digits for iterations.
  virtual void set_tolerance(double rel_tolerance) { (void)rel_tolerance; }

  /// Refresh/solve counters (all zero for strategies that don't track).
  const SolverStats& stats() const { return stats_; }

  /// Fold every piece of mutable solver state whose *values* can
  /// influence future solve() results (stale preconditioner factors,
  /// deferred-refresh bookkeeping) into the FNV-1a accumulator \p h, and
  /// return true. Strategies whose solve() output is a pure function of
  /// the bound matrix's current values and the caller-supplied (b, x)
  /// have nothing to fold and return true without touching \p h.
  /// Return false when the strategy cannot enumerate its
  /// history-carrying state — exact-recurrence machinery (limit-cycle
  /// replay, sim/replay.hpp) must then stand down. Monotonic counters
  /// (stats_) are excluded by contract: they never feed back into
  /// solve() arithmetic.
  virtual bool fold_replay_state(std::uint64_t& h) const {
    (void)h;
    return false;
  }

  /// Human-readable solver name for logs and benches.
  virtual const char* name() const = 0;

 protected:
  SolverStats stats_;
};

/// Create a solver of the requested kind bound to \p a. A non-null
/// \p structure (typically from a StructureCache shared across a sweep)
/// supplies the precomputed symbolic analysis of \p a's pattern.
///
/// A non-empty \p flow_tail_rows (duplicate-free, original row indices)
/// opts kBandedLu into the tail-constrained RCM ordering: the listed
/// rows are pinned to the end of the permutation so a partial refactor
/// after a flow update re-eliminates only the tail block. This trades
/// band width for tail locality (see rcm_ordering_constrained) and
/// bypasses \p structure's cached permutation; iterative kinds ignore
/// it.
std::unique_ptr<LinearSolver> make_solver(
    SolverKind kind, const CsrMatrix& a,
    std::shared_ptr<const SymbolicStructure> structure = nullptr,
    std::span<const std::int32_t> flow_tail_rows = {});

}  // namespace tac3d::sparse
