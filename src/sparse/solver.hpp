#pragma once
/// \file solver.hpp
/// \brief Facade over the direct and iterative solvers so the thermal
/// module can switch strategies via configuration.

#include <memory>
#include <span>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

/// Solver strategy.
enum class SolverKind {
  kBandedLu,        ///< RCM + banded direct LU, cached factorization
  kBicgstabIlu0,    ///< BiCGSTAB with ILU(0)
  kBicgstabJacobi,  ///< BiCGSTAB with Jacobi
};

/// A linear solver bound to one matrix; update_values() refreshes the
/// factorization/preconditioner after in-place value changes on the same
/// sparsity pattern.
class LinearSolver {
 public:
  virtual ~LinearSolver() = default;

  /// Refresh internal state after the bound matrix's values changed.
  virtual void update_values(const CsrMatrix& a) = 0;

  /// Solve A x = b; \p x may carry a warm-start guess for iterative
  /// solvers (ignored by direct ones).
  virtual void solve(std::span<const double> b, std::span<double> x) = 0;

  /// Human-readable solver name for logs and benches.
  virtual const char* name() const = 0;
};

/// Create a solver of the requested kind bound to \p a.
std::unique_ptr<LinearSolver> make_solver(SolverKind kind, const CsrMatrix& a);

}  // namespace tac3d::sparse
