#pragma once
/// \file kernels.hpp
/// \brief Fused, allocation-free linear-algebra kernels for the solver
/// hot path.
///
/// The transient thermal loop spends nearly all of its time in SpMV,
/// dot products and vector updates. These kernels work on raw contiguous
/// arrays (no virtual dispatch, no bounds checks beyond a debug-style
/// require at the span level in callers), fuse passes that the naive
/// formulation would run separately (SpMV + dot, residual = b - A x,
/// the BiCGSTAB final update + residual), and never allocate — callers
/// provide every output buffer. Inner loops are written so the compiler
/// can auto-vectorize them.

#include <span>

#include "sparse/csr.hpp"

namespace tac3d::sparse {

/// y = A x (plain SpMV on the CSR arrays).
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> y);

/// y = A x, returning dot(w, y) from the same pass (fused SpMV + dot).
double spmv_dot(const CsrMatrix& a, std::span<const double> x,
                std::span<double> y, std::span<const double> w);

/// y = A x, returning dot(y, y) and setting *wy = dot(w, y), all from
/// one pass (the BiCGSTAB stabilization step needs both).
double spmv_dot2(const CsrMatrix& a, std::span<const double> x,
                 std::span<double> y, std::span<const double> w, double* wy);

/// r = b - A x in one pass (fused SpMV + axpy); returns dot(r, r).
double residual(const CsrMatrix& a, std::span<const double> x,
                std::span<const double> b, std::span<double> r);

/// r = b - A x, returning dot(r, r) and setting *bb = dot(b, b), all in
/// one pass (a Krylov solve needs ||b|| for its relative tolerance).
double residual_norms(const CsrMatrix& a, std::span<const double> x,
                      std::span<const double> b, std::span<double> r,
                      double* bb);

/// dot(a, b).
double dot(std::span<const double> a, std::span<const double> b);

/// ||a||_2.
double norm2(std::span<const double> a);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = x + beta * y.
void xpby(std::span<const double> x, double beta, std::span<double> y);

/// w = x + alpha * y; returns dot(w, w).
double waxpby(std::span<double> w, std::span<const double> x, double alpha,
              std::span<const double> y);

/// y += alpha * a[i] * b[i] (element-wise product accumulate; the
/// backward-Euler RHS build y = P + (C/dt) T_n uses it with alpha = 1).
void axpy_product(double alpha, std::span<const double> a,
                  std::span<const double> b, std::span<double> y);

/// BiCGSTAB direction update p = r + beta * (p - omega * v).
void bicgstab_p_update(std::span<const double> r, double beta, double omega,
                       std::span<const double> v, std::span<double> p);

/// BiCGSTAB tail fused into one pass:
///   x += alpha * ph + omega * sh,  r = s - omega * t;
/// returns dot(r, r).
double bicgstab_final_update(double alpha, std::span<const double> ph,
                             double omega, std::span<const double> sh,
                             std::span<const double> s,
                             std::span<const double> t, std::span<double> x,
                             std::span<double> r);

}  // namespace tac3d::sparse
