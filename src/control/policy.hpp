#pragma once
/// \file policy.hpp
/// \brief Run-time thermal-management policy interface and the paper's
/// four policies: AC_LB, AC_TDVFS_LB, LC_LB and LC_FUZZY.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "power/vf.hpp"

namespace tac3d::control {

/// Sensor and workload observations at one control interval.
struct PolicyInputs {
  std::vector<double> core_temps;    ///< per-core max temperature [K]
  std::vector<double> core_demands;  ///< offered per-core demand in [0, 1]
  double dt = 0.0;                   ///< control interval [s]
};

/// Knob settings decided by the policy.
struct PolicyActions {
  std::vector<int> vf_levels;  ///< per-core DVFS level
  int pump_level = -1;         ///< pump setting (-1 = no pump / unchanged)
};

/// A run-time thermal-management policy. Load balancing is performed by
/// the scheduler for every policy (all paper policies include LB).
class ThermalPolicy {
 public:
  virtual ~ThermalPolicy() = default;
  virtual PolicyActions decide(const PolicyInputs& in) = 0;

  /// Allocation-free variant writing into a caller-persistent
  /// PolicyActions. The built-in policies override this and implement
  /// decide() on top of it; external policies (tests, experiments) can
  /// keep overriding just decide() — the default wraps it.
  virtual void decide_into(const PolicyInputs& in, PolicyActions& out) {
    out = decide(in);
  }

  virtual std::string name() const = 0;

  /// Fold every piece of mutable policy state that can influence future
  /// decisions (hysteresis levels, trend EMAs, slew memory) into the
  /// FNV-1a accumulator \p h and return true; stateless policies return
  /// true without touching \p h. The default returns false — "cannot
  /// enumerate my state" — which makes exact-recurrence machinery
  /// (limit-cycle replay, sim/replay.hpp) stand down rather than trust
  /// an incomplete fingerprint. External policies only need to override
  /// this if they want replay to engage.
  virtual bool fold_replay_state(std::uint64_t& h) const {
    (void)h;
    return false;
  }
};

/// AC_LB / LC_LB: no DVFS (all cores at the nominal VF); liquid variants
/// run the pump at the maximum setting (the paper's worst-case-flow
/// baseline).
class MaxPerformancePolicy final : public ThermalPolicy {
 public:
  /// \param pump_level level to hold (-1 for air-cooled stacks)
  MaxPerformancePolicy(int n_cores, const power::VfTable& vf, int pump_level);
  PolicyActions decide(const PolicyInputs& in) override;
  void decide_into(const PolicyInputs& in, PolicyActions& out) override;
  std::string name() const override;
  bool fold_replay_state(std::uint64_t& h) const override;

 private:
  int n_cores_;
  int top_level_;
  int pump_level_;
};

/// AC_TDVFS_LB: temperature-triggered DVFS with hysteresis. While a
/// core is above the trip temperature (85 C) its VF drops one level per
/// interval; below the release temperature (82 C) it climbs back.
class TemperatureTriggeredDvfsPolicy final : public ThermalPolicy {
 public:
  TemperatureTriggeredDvfsPolicy(int n_cores, const power::VfTable& vf,
                                 double trip_k, double release_k,
                                 int pump_level = -1);
  PolicyActions decide(const PolicyInputs& in) override;
  void decide_into(const PolicyInputs& in, PolicyActions& out) override;
  std::string name() const override;
  bool fold_replay_state(std::uint64_t& h) const override;

 private:
  power::VfTable vf_;
  double trip_;
  double release_;
  int pump_level_;
  std::vector<int> levels_;
};

/// LC_FUZZY: the paper's fuzzy controller. Flow rate follows a Mamdani
/// controller on (hottest core temperature, temperature trend); per-core
/// VF follows utilization so capacity always covers demand (which is why
/// the paper reports < 0.01% performance loss).
class FuzzyFlowDvfsPolicy final : public ThermalPolicy {
 public:
  /// \param pump_levels number of discrete pump settings
  /// \param threshold_k thermal threshold to enforce [K]
  FuzzyFlowDvfsPolicy(int n_cores, const power::VfTable& vf, int pump_levels,
                      double threshold_k);
  ~FuzzyFlowDvfsPolicy() override;  // out-of-line: FuzzyController is opaque
  PolicyActions decide(const PolicyInputs& in) override;
  void decide_into(const PolicyInputs& in, PolicyActions& out) override;
  std::string name() const override;
  bool fold_replay_state(std::uint64_t& h) const override;

  /// Normalized flow command of the last decision, in [0, 1] (test hook).
  double last_flow_fraction() const { return last_flow_; }

  /// Lane-batched decide for K same-class fuzzy policies (the batched
  /// control tail): per-lane margin/trend state updates, one shared
  /// FuzzyController::evaluate_lanes inference (every FuzzyFlowDvfsPolicy
  /// builds the identical rule base, so policies[0]'s controller speaks
  /// for all), then per-lane slew limiting and DVFS. Bitwise identical
  /// to calling decide_into on each lane in order. \p eval_scratch must
  /// hold 2*K doubles and \p flow_scratch K doubles (caller-persistent
  /// so the tail stays allocation-free). All lanes' input sizes are
  /// validated before any lane's controller state mutates, so on a
  /// validation throw the caller can fall back to per-lane decide_into
  /// without double-stepping the trend EMA.
  static void decide_batch(std::span<FuzzyFlowDvfsPolicy* const> policies,
                           std::span<const PolicyInputs* const> in,
                           std::span<PolicyActions* const> out,
                           std::span<double> eval_scratch,
                           std::span<double> flow_scratch);

 private:
  void check_inputs(const PolicyInputs& in) const;
  /// First half of decide: sensor fold + trend EMA update; writes
  /// {margin, trend} into \p ev and returns the margin.
  double prepare_eval(const PolicyInputs& in, double* ev);
  /// Second half: pump slew limit + utilization DVFS from last_flow_.
  void finish_decide(double margin, const PolicyInputs& in,
                     PolicyActions& out);

  power::VfTable vf_;
  int n_cores_;
  int pump_levels_;
  double threshold_;
  double prev_max_temp_ = -1.0;
  double trend_ema_ = 0.0;
  double last_flow_ = 1.0;
  int prev_level_ = -1;
  std::unique_ptr<class FuzzyController> fuzzy_;
};

}  // namespace tac3d::control
