#include "control/fuzzy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tac3d::control {

MembershipFunction MembershipFunction::triangular(double a, double b,
                                                  double c) {
  require(a <= b && b <= c && a < c,
          "MembershipFunction::triangular: need a <= b <= c, a < c");
  return MembershipFunction(Kind::kTriangle, a, b, c, c);
}

MembershipFunction MembershipFunction::trapezoid(double a, double b, double c,
                                                 double d) {
  require(a <= b && b <= c && c <= d && a < d,
          "MembershipFunction::trapezoid: need a <= b <= c <= d, a < d");
  return MembershipFunction(Kind::kTrapezoid, a, b, c, d);
}

LinguisticVariable::LinguisticVariable(std::string name, double lo, double hi)
    : name_(std::move(name)), lo_(lo), hi_(hi) {
  require(hi > lo, "LinguisticVariable: domain must be non-empty");
}

int LinguisticVariable::add_set(std::string set_name, MembershipFunction mf) {
  sets_.push_back(FuzzySet{std::move(set_name), std::move(mf)});
  return set_count() - 1;
}

int LinguisticVariable::set_index(const std::string& set_name) const {
  for (int i = 0; i < set_count(); ++i) {
    if (sets_[i].name == set_name) return i;
  }
  throw InvalidArgument("LinguisticVariable " + name_ + ": no set named " +
                        set_name);
}

double LinguisticVariable::membership(int i, double x) const {
  require(i >= 0 && i < set_count(),
          "LinguisticVariable::membership: set index out of range");
  return sets_[i].mf(std::clamp(x, lo_, hi_));
}

int FuzzyController::add_input(LinguisticVariable var) {
  inputs_.push_back(std::move(var));
  return input_count() - 1;
}

void FuzzyController::set_output(LinguisticVariable var) {
  output_.clear();
  output_.push_back(std::move(var));
}

void FuzzyController::add_rule(FuzzyRule rule) {
  require(!output_.empty(), "FuzzyController: set_output before add_rule");
  require(rule.output_set >= 0 && rule.output_set < output_[0].set_count(),
          "FuzzyController: rule output set out of range");
  for (const auto& [var, set] : rule.antecedents) {
    require(var >= 0 && var < input_count(),
            "FuzzyController: rule references unknown input");
    require(set >= 0 && set < inputs_[var].set_count(),
            "FuzzyController: rule references unknown input set");
  }
  rules_.push_back(std::move(rule));
}

void FuzzyController::add_rule(
    const std::vector<std::pair<std::string, std::string>>& antecedents,
    const std::string& output_set, double weight) {
  FuzzyRule rule;
  for (const auto& [var_name, set_name] : antecedents) {
    int var = -1;
    for (int i = 0; i < input_count(); ++i) {
      if (inputs_[i].name() == var_name) var = i;
    }
    require(var >= 0, "FuzzyController: no input named " + var_name);
    rule.antecedents.push_back({var, inputs_[var].set_index(set_name)});
  }
  require(!output_.empty(), "FuzzyController: set_output before add_rule");
  rule.output_set = output_[0].set_index(output_set);
  rule.weight = weight;
  add_rule(std::move(rule));
}

double FuzzyController::evaluate(std::span<const double> inputs,
                                 int resolution) const {
  require(!output_.empty(), "FuzzyController: no output variable");
  require(static_cast<int>(inputs.size()) == input_count(),
          "FuzzyController::evaluate: input size mismatch");
  require(resolution >= 3, "FuzzyController::evaluate: resolution too low");

  // Rule activations: min over antecedents, scaled by weight.
  std::vector<double>& activation = activation_;
  activation.assign(output_[0].set_count(), 0.0);
  for (const FuzzyRule& rule : rules_) {
    double a = 1.0;
    for (const auto& [var, set] : rule.antecedents) {
      a = std::min(a, inputs_[var].membership(set, inputs[var]));
    }
    a *= rule.weight;
    activation[rule.output_set] =
        std::max(activation[rule.output_set], a);
  }

  // Centroid of the max-aggregated clipped output sets.
  const LinguisticVariable& out = output_[0];
  const double lo = out.lo();
  const double hi = out.hi();
  double num = 0.0, den = 0.0;
  for (int s = 0; s < resolution; ++s) {
    const double x = lo + (hi - lo) * s / (resolution - 1);
    double mu = 0.0;
    for (int i = 0; i < out.set_count(); ++i) {
      mu = std::max(mu, std::min(activation[i], out.membership(i, x)));
    }
    num += mu * x;
    den += mu;
  }
  return den > 0.0 ? num / den : 0.5 * (lo + hi);
}

void FuzzyController::evaluate_lanes(std::span<const double> inputs_lane_major,
                                     int lanes, std::span<double> out,
                                     int resolution) const {
  require(!output_.empty(), "FuzzyController: no output variable");
  require(lanes >= 1, "FuzzyController::evaluate_lanes: need lanes");
  require(static_cast<int>(inputs_lane_major.size()) ==
              lanes * input_count(),
          "FuzzyController::evaluate_lanes: input size mismatch");
  require(static_cast<int>(out.size()) == lanes,
          "FuzzyController::evaluate_lanes: output size mismatch");
  require(resolution >= 3, "FuzzyController::evaluate_lanes: resolution");

  const LinguisticVariable& outv = output_[0];
  const int n_sets = outv.set_count();

  // Per-lane rule activations — same expressions as evaluate().
  lane_activation_.assign(static_cast<std::size_t>(lanes) * n_sets, 0.0);
  for (int l = 0; l < lanes; ++l) {
    const double* in = inputs_lane_major.data() + l * input_count();
    double* act = lane_activation_.data() + static_cast<std::size_t>(l) * n_sets;
    for (const FuzzyRule& rule : rules_) {
      double a = 1.0;
      for (const auto& [var, set] : rule.antecedents) {
        a = std::min(a, inputs_[var].membership(set, in[var]));
      }
      a *= rule.weight;
      act[rule.output_set] = std::max(act[rule.output_set], a);
    }
  }

  // Shared centroid sweep: sample every output-set membership once per
  // x, then clip/aggregate per lane in the same i-order as evaluate().
  const double lo = outv.lo();
  const double hi = outv.hi();
  num_.assign(lanes, 0.0);
  den_.assign(lanes, 0.0);
  set_mu_.assign(n_sets, 0.0);
  for (int s = 0; s < resolution; ++s) {
    const double x = lo + (hi - lo) * s / (resolution - 1);
    for (int i = 0; i < n_sets; ++i) set_mu_[i] = outv.membership(i, x);
    for (int l = 0; l < lanes; ++l) {
      const double* act =
          lane_activation_.data() + static_cast<std::size_t>(l) * n_sets;
      double mu = 0.0;
      for (int i = 0; i < n_sets; ++i) {
        mu = std::max(mu, std::min(act[i], set_mu_[i]));
      }
      num_[l] += mu * x;
      den_[l] += mu;
    }
  }
  for (int l = 0; l < lanes; ++l) {
    out[l] = den_[l] > 0.0 ? num_[l] / den_[l] : 0.5 * (lo + hi);
  }
}

}  // namespace tac3d::control
