#pragma once
/// \file fuzzy.hpp
/// \brief Generic Mamdani fuzzy-inference engine (triangular/trapezoid
/// membership, min-AND, max aggregation, centroid defuzzification).
///
/// The LC_FUZZY run-time controller of the paper (from the authors'
/// ICCAD'10 work) is built on this engine; it is generic so tests can
/// exercise it independently of the thermal policy.

#include <span>
#include <string>
#include <vector>

namespace tac3d::control {

/// Membership function on a real domain, returning a grade in [0, 1].
///
/// Stored as shape parameters and evaluated inline (it used to wrap a
/// std::function closure, which put an indirect call inside the centroid
/// sampling loop — the single hottest spot of every LC_FUZZY control
/// step). The arithmetic is expression-for-expression what the closures
/// computed, so results are bitwise unchanged.
class MembershipFunction {
 public:
  /// Triangle with feet at \p a and \p c and apex at \p b.
  static MembershipFunction triangular(double a, double b, double c);

  /// Trapezoid with feet a/d and plateau b..c. Degenerate edges
  /// (a == b or c == d) become crisp shoulders.
  static MembershipFunction trapezoid(double a, double b, double c, double d);

  double operator()(double x) const {
    if (kind_ == Kind::kTriangle) {
      if (x <= a_ || x >= c_) return (x == b_) ? 1.0 : 0.0;
      if (x == b_) return 1.0;
      return x < b_ ? (x - a_) / (b_ - a_) : (c_ - x) / (c_ - b_);
    }
    if (x < a_ || x > d_) return 0.0;
    if (x >= b_ && x <= c_) return 1.0;
    if (x < b_) return b_ == a_ ? 1.0 : (x - a_) / (b_ - a_);
    return d_ == c_ ? 1.0 : (d_ - x) / (d_ - c_);
  }

 private:
  enum class Kind { kTriangle, kTrapezoid };

  MembershipFunction(Kind kind, double a, double b, double c, double d)
      : kind_(kind), a_(a), b_(b), c_(c), d_(d) {}

  Kind kind_;
  double a_, b_, c_, d_;
};

/// A named fuzzy set over a variable's domain.
struct FuzzySet {
  std::string name;
  MembershipFunction mf;
};

/// A linguistic variable: a domain plus its fuzzy sets.
class LinguisticVariable {
 public:
  LinguisticVariable(std::string name, double lo, double hi);

  const std::string& name() const { return name_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Add a set; returns its index.
  int add_set(std::string set_name, MembershipFunction mf);

  int set_count() const { return static_cast<int>(sets_.size()); }
  const FuzzySet& set(int i) const { return sets_[i]; }

  /// Index of the set named \p set_name (throws if absent).
  int set_index(const std::string& set_name) const;

  /// Membership grade of \p x in set \p i (x clamped to the domain).
  double membership(int i, double x) const;

 private:
  std::string name_;
  double lo_;
  double hi_;
  std::vector<FuzzySet> sets_;
};

/// One IF-AND rule: antecedents (input index, set index) -> output set.
struct FuzzyRule {
  std::vector<std::pair<int, int>> antecedents;
  int output_set = 0;
  double weight = 1.0;
};

/// Single-output Mamdani controller.
class FuzzyController {
 public:
  /// Register an input variable; returns its index.
  int add_input(LinguisticVariable var);

  /// Set the output variable.
  void set_output(LinguisticVariable var);

  /// Add a rule (by set indices).
  void add_rule(FuzzyRule rule);

  /// Convenience: add a rule by names,
  /// e.g. add_rule({{"temp","hot"},{"util","low"}}, "increase").
  void add_rule(
      const std::vector<std::pair<std::string, std::string>>& antecedents,
      const std::string& output_set, double weight = 1.0);

  int input_count() const { return static_cast<int>(inputs_.size()); }
  int rule_count() const { return static_cast<int>(rules_.size()); }

  /// Mamdani inference: min-AND activation, max aggregation of clipped
  /// output sets, centroid defuzzification (\p resolution samples).
  /// Returns the domain midpoint if no rule fires. Allocation-free
  /// after the first call (rule-activation workspace is persistent).
  double evaluate(std::span<const double> inputs, int resolution = 101) const;

  /// Convenience overload for brace-initialized inputs (tests).
  double evaluate(const std::vector<double>& inputs,
                  int resolution = 101) const {
    return evaluate(std::span<const double>(inputs), resolution);
  }

  /// Lane-batched Mamdani inference: \p lanes independent input tuples
  /// (lane-major — lane l's inputs at [l * input_count(), ...)), one
  /// defuzzified output per lane. Rule activation runs per lane, but
  /// the centroid sweep samples each output-set membership once per x
  /// and shares it across every lane (it depends only on x) — that
  /// sampling is the hottest part of a scalar evaluate(). Per lane the
  /// arithmetic is expression-for-expression evaluate(), so results
  /// are bitwise identical. Allocation-free after the first call.
  void evaluate_lanes(std::span<const double> inputs_lane_major, int lanes,
                      std::span<double> out, int resolution = 101) const;

 private:
  std::vector<LinguisticVariable> inputs_;
  std::vector<LinguisticVariable> output_;
  std::vector<FuzzyRule> rules_;
  // Persistent inference workspaces (sized on first use, reused after).
  mutable std::vector<double> activation_;       ///< set_count
  mutable std::vector<double> lane_activation_;  ///< lanes * set_count
  mutable std::vector<double> set_mu_;           ///< set_count
  mutable std::vector<double> num_;              ///< lanes
  mutable std::vector<double> den_;              ///< lanes
};

}  // namespace tac3d::control
