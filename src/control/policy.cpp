#include "control/policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/fnv.hpp"
#include "common/units.hpp"
#include "control/fuzzy.hpp"

namespace tac3d::control {

MaxPerformancePolicy::MaxPerformancePolicy(int n_cores,
                                           const power::VfTable& vf,
                                           int pump_level)
    : n_cores_(n_cores), top_level_(vf.max_level()), pump_level_(pump_level) {
  require(n_cores > 0, "MaxPerformancePolicy: need cores");
}

PolicyActions MaxPerformancePolicy::decide(const PolicyInputs& in) {
  PolicyActions a;
  decide_into(in, a);
  return a;
}

void MaxPerformancePolicy::decide_into(const PolicyInputs& in,
                                       PolicyActions& out) {
  (void)in;
  out.vf_levels.assign(n_cores_, top_level_);
  out.pump_level = pump_level_;
}

std::string MaxPerformancePolicy::name() const {
  return pump_level_ < 0 ? "AC_LB" : "LC_LB";
}

bool MaxPerformancePolicy::fold_replay_state(std::uint64_t& h) const {
  (void)h;  // stateless: every decision depends only on the fixed config
  return true;
}

TemperatureTriggeredDvfsPolicy::TemperatureTriggeredDvfsPolicy(
    int n_cores, const power::VfTable& vf, double trip_k, double release_k,
    int pump_level)
    : vf_(vf), trip_(trip_k), release_(release_k), pump_level_(pump_level) {
  require(n_cores > 0, "TemperatureTriggeredDvfsPolicy: need cores");
  require(release_k < trip_k,
          "TemperatureTriggeredDvfsPolicy: release must be below trip");
  levels_.assign(n_cores, vf_.max_level());
}

PolicyActions TemperatureTriggeredDvfsPolicy::decide(const PolicyInputs& in) {
  PolicyActions a;
  decide_into(in, a);
  return a;
}

void TemperatureTriggeredDvfsPolicy::decide_into(const PolicyInputs& in,
                                                 PolicyActions& out) {
  require(in.core_temps.size() == levels_.size(),
          "TemperatureTriggeredDvfsPolicy: temps size mismatch");
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (in.core_temps[i] > trip_ && levels_[i] > 0) {
      --levels_[i];  // scale down one step per interval above threshold
    } else if (in.core_temps[i] < release_ &&
               levels_[i] < vf_.max_level()) {
      ++levels_[i];
    }
  }
  out.vf_levels = levels_;
  out.pump_level = pump_level_;
}

std::string TemperatureTriggeredDvfsPolicy::name() const {
  return pump_level_ < 0 ? "AC_TDVFS_LB" : "LC_TDVFS_LB";
}

bool TemperatureTriggeredDvfsPolicy::fold_replay_state(
    std::uint64_t& h) const {
  // The per-core hysteresis levels are the only decision-feeding memory.
  h = fnv1a(h, std::span<const int>(levels_));
  return true;
}

FuzzyFlowDvfsPolicy::FuzzyFlowDvfsPolicy(int n_cores,
                                         const power::VfTable& vf,
                                         int pump_levels, double threshold_k)
    : vf_(vf),
      n_cores_(n_cores),
      pump_levels_(pump_levels),
      threshold_(threshold_k) {
  require(n_cores > 0 && pump_levels >= 2, "FuzzyFlowDvfsPolicy: bad config");

  // Temperature expressed as margin below the threshold [K]:
  // margin = threshold - T_hottest. Large margin -> over-cooled.
  LinguisticVariable margin("margin", -10.0, 60.0);
  margin.add_set("critical", MembershipFunction::trapezoid(-10, -10, 0, 3));
  margin.add_set("small", MembershipFunction::triangular(0, 7, 14));
  margin.add_set("medium", MembershipFunction::triangular(10, 20, 32));
  margin.add_set("large", MembershipFunction::trapezoid(26, 40, 60, 60));

  // Temperature trend [K/s].
  LinguisticVariable trend("trend", -3.0, 3.0);
  trend.add_set("falling", MembershipFunction::trapezoid(-3, -3, -1.2, -0.4));
  trend.add_set("steady", MembershipFunction::trapezoid(-1.0, -0.3, 0.3, 1.0));
  trend.add_set("rising", MembershipFunction::trapezoid(0.4, 1.2, 3, 3));

  // Output: normalized flow command.
  LinguisticVariable flow("flow", 0.0, 1.0);
  flow.add_set("min", MembershipFunction::trapezoid(0.0, 0.0, 0.05, 0.25));
  flow.add_set("low", MembershipFunction::triangular(0.1, 0.28, 0.45));
  flow.add_set("mid", MembershipFunction::triangular(0.35, 0.55, 0.75));
  flow.add_set("high", MembershipFunction::triangular(0.6, 0.8, 0.95));
  flow.add_set("max", MembershipFunction::trapezoid(0.85, 0.97, 1.0, 1.0));

  fuzzy_ = std::make_unique<FuzzyController>();
  fuzzy_->add_input(std::move(margin));
  fuzzy_->add_input(std::move(trend));
  fuzzy_->set_output(std::move(flow));

  // Rule base: enforce the threshold first, then shed flow when the
  // stack is over-cooled.
  fuzzy_->add_rule({{"margin", "critical"}}, "max");
  fuzzy_->add_rule({{"margin", "small"}, {"trend", "rising"}}, "max");
  fuzzy_->add_rule({{"margin", "small"}, {"trend", "steady"}}, "high");
  fuzzy_->add_rule({{"margin", "small"}, {"trend", "falling"}}, "mid");
  fuzzy_->add_rule({{"margin", "medium"}, {"trend", "rising"}}, "mid");
  fuzzy_->add_rule({{"margin", "medium"}, {"trend", "steady"}}, "low");
  fuzzy_->add_rule({{"margin", "medium"}, {"trend", "falling"}}, "low");
  fuzzy_->add_rule({{"margin", "large"}, {"trend", "rising"}}, "min");
  fuzzy_->add_rule({{"margin", "large"}, {"trend", "steady"}}, "min");
  fuzzy_->add_rule({{"margin", "large"}, {"trend", "falling"}}, "min");
}

FuzzyFlowDvfsPolicy::~FuzzyFlowDvfsPolicy() = default;

PolicyActions FuzzyFlowDvfsPolicy::decide(const PolicyInputs& in) {
  PolicyActions a;
  decide_into(in, a);
  return a;
}

void FuzzyFlowDvfsPolicy::check_inputs(const PolicyInputs& in) const {
  require(static_cast<int>(in.core_temps.size()) == n_cores_ &&
              static_cast<int>(in.core_demands.size()) == n_cores_,
          "FuzzyFlowDvfsPolicy: input size mismatch");
}

double FuzzyFlowDvfsPolicy::prepare_eval(const PolicyInputs& in, double* ev) {
  double max_temp = -1e300;
  for (double t : in.core_temps) max_temp = std::max(max_temp, t);
  const double margin = threshold_ - max_temp;
  const double raw_trend =
      (prev_max_temp_ < 0.0 || in.dt <= 0.0)
          ? 0.0
          : (max_temp - prev_max_temp_) / in.dt;
  prev_max_temp_ = max_temp;
  // Exponential smoothing: ignore single-step transients after a pump
  // adjustment, react to sustained drifts.
  trend_ema_ = 0.7 * trend_ema_ + 0.3 * raw_trend;
  ev[0] = margin;
  ev[1] = trend_ema_;
  return margin;
}

void FuzzyFlowDvfsPolicy::finish_decide(double margin, const PolicyInputs& in,
                                        PolicyActions& out) {
  int target = static_cast<int>(std::lround(last_flow_ * (pump_levels_ - 1)));
  target = std::clamp(target, 0, pump_levels_ - 1);
  // Slew-limit the pump (2 settings/interval up, 1 down) to damp the
  // flow/temperature limit cycle; a critical margin overrides the limit.
  if (prev_level_ < 0) {
    prev_level_ = pump_levels_ - 1;
  }
  if (margin <= 0.0) {
    target = pump_levels_ - 1;
  } else {
    target = std::clamp(target, prev_level_ - 1, prev_level_ + 2);
  }
  prev_level_ = target;
  out.pump_level = target;

  // Utilization-driven DVFS: pick the lowest level whose capacity covers
  // the demand with margin; force nominal when the margin is critical
  // so DVFS never fights the pump for the threshold.
  out.vf_levels.resize(n_cores_);
  for (int i = 0; i < n_cores_; ++i) {
    out.vf_levels[i] = margin <= 0.0
                           ? vf_.max_level()
                           : vf_.level_for_demand(in.core_demands[i], 0.08);
  }
}

void FuzzyFlowDvfsPolicy::decide_into(const PolicyInputs& in,
                                      PolicyActions& out) {
  check_inputs(in);
  double ev[2];
  const double margin = prepare_eval(in, ev);
  last_flow_ = fuzzy_->evaluate(std::span<const double>(ev, 2));
  finish_decide(margin, in, out);
}

void FuzzyFlowDvfsPolicy::decide_batch(
    std::span<FuzzyFlowDvfsPolicy* const> policies,
    std::span<const PolicyInputs* const> in,
    std::span<PolicyActions* const> out, std::span<double> eval_scratch,
    std::span<double> flow_scratch) {
  const int k = static_cast<int>(policies.size());
  require(k >= 1, "FuzzyFlowDvfsPolicy::decide_batch: need lanes");
  require(static_cast<int>(in.size()) == k &&
              static_cast<int>(out.size()) == k,
          "FuzzyFlowDvfsPolicy::decide_batch: lane count mismatch");
  require(static_cast<int>(eval_scratch.size()) == 2 * k &&
              static_cast<int>(flow_scratch.size()) == k,
          "FuzzyFlowDvfsPolicy::decide_batch: scratch size mismatch");
  // Validate every lane before mutating any lane's controller state, so
  // a size error here leaves all lanes clean for per-lane fallback.
  for (int l = 0; l < k; ++l) policies[l]->check_inputs(*in[l]);

  for (int l = 0; l < k; ++l) {
    policies[l]->prepare_eval(*in[l], &eval_scratch[2 * l]);
  }
  policies[0]->fuzzy_->evaluate_lanes(eval_scratch, k, flow_scratch);
  for (int l = 0; l < k; ++l) {
    policies[l]->last_flow_ = flow_scratch[l];
    // eval_scratch[2l] still holds lane l's margin.
    policies[l]->finish_decide(eval_scratch[2 * l], *in[l], *out[l]);
  }
}

std::string FuzzyFlowDvfsPolicy::name() const { return "LC_FUZZY"; }

bool FuzzyFlowDvfsPolicy::fold_replay_state(std::uint64_t& h) const {
  // The Mamdani rule base (fuzzy_) is immutable after construction;
  // the decision-feeding memory is the sensor-fold/trend/slew state.
  h = fnv1a(h, prev_max_temp_);
  h = fnv1a(h, trend_ema_);
  h = fnv1a(h, last_flow_);
  h = fnv1a(h, prev_level_);
  return true;
}

}  // namespace tac3d::control
