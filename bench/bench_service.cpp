// Mixed-request replay against the sweep service: boot a ServiceServer
// on loopback, drive it with concurrent clients replaying a fixed mix
// of submit-sweep and what-if requests, and compare sustained request
// throughput against the same work run directly through run_sweep on
// the same number of threads. Also measures time-to-first-result (the
// service streams per-scenario results, so a client sees its first
// answer long before the sweep completes) and verifies the service's
// answers are bitwise identical to the direct path.
//
// Emits BENCH_service.json for scripts/check_bench_regression.py:
// service vs direct throughput is a ratio gate (the wire + scheduling
// overhead must stay small), p99 time-to-first-result and the shared
// bank's hit counters are tracked fields.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/bank.hpp"

namespace {

using namespace tac3d;

/// One replayed request: a sweep of several scenarios or a single
/// what-if.
struct Request {
  std::vector<sim::Scenario> scenarios;
  bool is_what_if = false;
};

sim::Scenario make_scenario(int tiers, sim::PolicyKind policy,
                            power::WorkloadKind workload,
                            std::uint64_t seed) {
  sim::Scenario s;
  s.tiers = tiers;
  s.policy = policy;
  s.workload = workload;
  s.trace_seconds = 20;
  s.seed = seed;
  s.grid = thermal::GridOptions{12, 12};
  return s;
}

/// Deterministic mixed workload: sweep requests crossing the paper's
/// liquid-cooled policies with the average-case workloads, interleaved
/// with single-scenario what-ifs — the interactive pattern the service
/// exists for.
std::vector<Request> make_requests() {
  const std::vector<power::WorkloadKind> workloads =
      power::average_case_workloads();
  const std::vector<sim::PolicyKind> policies = {
      sim::PolicyKind::kLcFuzzy, sim::PolicyKind::kLcLb,
      sim::PolicyKind::kLcTdvfsLb};

  std::vector<Request> requests;
  int what_if_cursor = 0;
  for (int round = 0; round < 4; ++round) {
    for (int p = 0; p < static_cast<int>(policies.size()); ++p) {
      // One sweep: this policy across the workloads, both stacks.
      Request sweep;
      for (const int tiers : {2, 4}) {
        for (const auto w : workloads) {
          sweep.scenarios.push_back(make_scenario(
              tiers, policies[static_cast<std::size_t>(p)], w, 1));
        }
      }
      requests.push_back(std::move(sweep));

      // Two or three what-ifs between sweeps.
      for (int k = 0; k < 2 + (round % 2); ++k) {
        Request probe;
        probe.is_what_if = true;
        probe.scenarios.push_back(make_scenario(
            2 + 2 * (what_if_cursor % 2),
            policies[static_cast<std::size_t>((p + k) % policies.size())],
            workloads[static_cast<std::size_t>(what_if_cursor %
                                               workloads.size())],
            1));
        ++what_if_cursor;
        requests.push_back(std::move(probe));
      }
    }
  }
  return requests;
}

/// Key for bitwise comparison: scenario label -> metrics.
using MetricsByLabel = std::map<std::string, sim::SimMetrics>;

bool bitwise_equal(const sim::SimMetrics& a, const sim::SimMetrics& b) {
  return a.duration == b.duration && a.peak_temp == b.peak_temp &&
         a.any_hot_time == b.any_hot_time && a.chip_energy == b.chip_energy &&
         a.pump_energy == b.pump_energy && a.offered_work == b.offered_work &&
         a.lost_work == b.lost_work && a.migrations == b.migrations &&
         a.avg_flow_fraction == b.avg_flow_fraction &&
         a.core_hot_time == b.core_hot_time;
}

}  // namespace

int main() {
  bench::banner("bench_service",
                "sweep-as-a-service: request throughput, streaming latency "
                "and shared-bank amortization of the simulation server");

  const std::vector<Request> requests = make_requests();
  std::size_t total_scenarios = 0;
  for (const auto& r : requests) total_scenarios += r.scenarios.size();
  const int kClients = 2;
  const int kBudget = 2;
  std::cout << "Replaying " << requests.size() << " requests ("
            << total_scenarios << " scenarios) from " << kClients
            << " clients against a core budget of " << kBudget << ".\n\n";

  // --- direct baseline: same request list, same thread count, one warm
  // shared bank, each request a run_sweep(jobs=1) — what a user script
  // without the service would do.
  MetricsByLabel direct_metrics;
  double direct_seconds = 0.0;
  {
    auto bank = std::make_shared<sim::ScenarioBank>();
    // Warm-up pass (uncounted): the first sweep request pays the
    // trace/model/steady construction; the replay then measures the
    // steady serving state.
    {
      sim::SweepOptions opts;
      opts.jobs = 1;
      opts.bank = bank;
      (void)sim::run_sweep(requests.front().scenarios, opts);
    }
    bench::Stopwatch direct_watch;
    std::atomic<std::size_t> next{0};
    std::mutex collect_mu;
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= requests.size()) return;
          sim::SweepOptions opts;
          opts.jobs = 1;
          opts.bank = bank;
          const sim::SweepReport report =
              sim::run_sweep(requests[i].scenarios, opts);
          std::lock_guard<std::mutex> lk(collect_mu);
          for (const auto& res : report.results()) {
            direct_metrics[res.scenario.label] = res.metrics;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    direct_seconds = direct_watch.seconds();
  }
  const double direct_rps =
      static_cast<double>(requests.size()) / direct_seconds;
  bench::result_line("direct requests/s (baseline)", direct_rps, "req/s");

  // --- service replay: same mix over the wire.
  service::ServerOptions server_opts;
  server_opts.service.core_budget = kBudget;
  service::ServiceServer server(server_opts);
  server.start();

  {
    // Warm-up mirroring the baseline's.
    service::ServiceClient warm;
    warm.connect("127.0.0.1", server.port());
    (void)warm.run_sweep(requests.front().scenarios, 1);
  }
  const sim::BankCounters warm_counters = server.service().bank()->counters();

  MetricsByLabel service_metrics;
  // Per-request time to first result, recorded into the shared obs
  // histogram: exact interpolated quantiles at this sample count, one
  // quantile implementation for benches and the live service alike.
  obs::Histogram ttfr_hist;
  std::mutex collect_mu;
  std::atomic<std::size_t> next{0};
  bench::Stopwatch service_watch;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      service::ServiceClient client;
      client.connect("127.0.0.1", server.port());
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests.size()) return;
        bench::Stopwatch req_watch;
        double first_ms = -1.0;
        const auto ack = client.submit_sweep(requests[i].scenarios, 1);
        const service::SweepOutcome out =
            client.collect(ack.job_id, [&](const auto&) {
              if (first_ms < 0.0) first_ms = req_watch.millis();
            });
        std::lock_guard<std::mutex> lk(collect_mu);
        ttfr_hist.record(first_ms);
        for (std::size_t k = 0; k < out.results.size(); ++k) {
          const auto& res = out.results[k];
          const auto& scenario =
              requests[i].scenarios[static_cast<std::size_t>(res.index)];
          service_metrics[scenario.label.empty()
                              ? sim::scenario_label(scenario)
                              : scenario.label] = res.metrics;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double service_seconds = service_watch.seconds();
  const double service_rps =
      static_cast<double>(requests.size()) / service_seconds;
  const double service_sps =
      static_cast<double>(total_scenarios) / service_seconds;

  const sim::BankCounters counters = server.service().bank()->counters();
  server.stop();

  // --- bitwise identity service vs direct.
  std::size_t compared = 0, mismatched = 0;
  for (const auto& [label, metrics] : service_metrics) {
    const auto it = direct_metrics.find(label);
    if (it == direct_metrics.end()) continue;
    ++compared;
    if (!bitwise_equal(metrics, it->second)) ++mismatched;
  }
  const bool bitwise_identical = compared > 0 && mismatched == 0;

  bench::result_line("service requests/s", service_rps, "req/s");
  bench::result_line("service scenarios/s", service_sps, "scen/s");
  bench::result_line("service/direct ratio", service_rps / direct_rps, "x");
  bench::result_line("time-to-first-result p50", ttfr_hist.quantile(0.50),
                     "ms");
  bench::result_line("time-to-first-result p99", ttfr_hist.quantile(0.99),
                     "ms");
  std::cout << "  bitwise identical to direct run_sweep: "
            << (bitwise_identical ? "yes" : "NO") << " (" << compared
            << " scenarios compared, " << mismatched << " mismatched)\n";
  std::cout << "  bank (replay only): steady "
            << counters.steady_hits - warm_counters.steady_hits << " hits / "
            << counters.steady_misses - warm_counters.steady_misses
            << " misses, model "
            << counters.model_hits - warm_counters.model_hits << " hits / "
            << counters.model_misses - warm_counters.model_misses
            << " misses\n";

  bench::JsonObject bank_json;
  bank_json.set("trace_hits", static_cast<std::int64_t>(counters.trace_hits))
      .set("trace_misses", static_cast<std::int64_t>(counters.trace_misses))
      .set("model_hits", static_cast<std::int64_t>(counters.model_hits))
      .set("model_misses", static_cast<std::int64_t>(counters.model_misses))
      .set("steady_hits", static_cast<std::int64_t>(counters.steady_hits))
      .set("steady_misses",
           static_cast<std::int64_t>(counters.steady_misses));

  bench::JsonObject json;
  json.set("bench", "service")
      .set("requests", static_cast<std::int64_t>(requests.size()))
      .set("scenarios", static_cast<std::int64_t>(total_scenarios))
      .set("clients", kClients)
      .set("core_budget", kBudget)
      .set("service_requests_per_sec", service_rps)
      .set("service_direct_requests_per_sec", direct_rps)
      .set("service_scenarios_per_sec", service_sps)
      .set("p50_ttfr_ms", ttfr_hist.quantile(0.50))
      .set("p99_ttfr_ms", ttfr_hist.quantile(0.99))
      .set("bitwise_identical", bitwise_identical ? 1 : 0)
      .set("bank", bank_json);
  bench::write_json("BENCH_service.json", json);
  return bitwise_identical ? 0 : 1;
}
