// Extension experiment (the paper's Section IV-B outlook): scale
// two-phase cooling from the 560 um-deep test-vehicle channels down
// toward the ~100 um cavities permissible between TSVs, cooling a
// full Niagara core tier (8 cores + crossbar at maximum utilization).
// Tracks the feasibility walls: dry-out, pressure drop and peak
// junction temperature, and compares against single-phase water in the
// Table I cavity.
#include <cmath>
#include <iostream>

#include "arch/calibration.hpp"
#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/modulation.hpp"
#include "twophase/tier_model.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::twophase;

  bench::banner(
      "EXTENSION - two-phase inter-tier cooling of a Niagara core tier",
      "Section IV-B: two-phase methods 'must be scaled down to the 50 um "
      "height of micro-channels permissible in between the TSVs'");

  const auto chip = arch::NiagaraConfig::paper();
  const double w = std::sqrt(chip.layer_area);
  const auto fp = arch::core_tier_floorplan(chip, 8, 0, 0, w);

  // Maximum-utilization power map: cores at full dynamic power plus a
  // leakage allowance, crossbar active.
  std::vector<double> powers(fp.size(), 0.0);
  for (int i = 0; i < 8; ++i) {
    powers[fp.index_of(arch::core_name(i))] =
        arch::calib::kCoreActiveW + 0.8;  // + leakage share
  }
  powers[fp.index_of(arch::crossbar_name(0))] = arch::calib::kCrossbarW;
  double total = 0.0;
  for (double p : powers) total += p;
  std::cout << "Tier: " << fmt(w * 1e3, 2) << " x " << fmt(w * 1e3, 2)
            << " mm, " << fmt(total, 1) << " W\n\n";

  TextTable t;
  t.set_header({"Cavity", "Peak junction [C]", "dP [bar]", "x_out (max)",
                "Dry-out", "Pump (dP*Q) [mW]", "Outlet Tsat [C]"});

  // Two-phase R245fa at three channel heights (560 -> 200 -> 100 um).
  for (const double height_um : {560.0, 200.0, 100.0}) {
    TwoPhaseTierDesign d;
    d.tier_width = w;
    d.tier_length = w;
    d.die_thickness = um(150.0);
    d.channel_width = um(85.0);
    d.channel_height = um(height_um);
    d.n_channels = static_cast<int>(w / um(170.0));
    d.refrigerant = &Refrigerant::r245fa();
    d.inlet_sat_temp = celsius_to_kelvin(30.0);
    // Size the flow for x_out ~ 0.5 on the mean flux.
    d.total_mass_flow =
        total / (0.5 * d.refrigerant->latent_heat(d.inlet_sat_temp));
    const auto res = simulate_twophase_tier(d, fp, powers, 24);
    t.add_row({"two-phase R245fa, " + fmt(height_um, 0) + " um deep",
               fmt(kelvin_to_celsius(res.peak_base_temp), 1),
               fmt(to_bar(res.pressure_drop), 3),
               fmt(res.max_outlet_quality, 2), res.dryout ? "YES" : "no",
               fmt(res.pumping_power * 1e3, 2),
               fmt(kelvin_to_celsius(res.outlet_t_sat), 2)});
  }

  // Single-phase reference: Table I water cavity under the same tier
  // (hot row analysis via the modulation evaluator).
  {
    const auto water = microchannel::water(
        celsius_to_kelvin(arch::calib::kCoolantInletC));
    const int n = 24;
    std::vector<double> seg(n, w / n);
    std::vector<double> q(n, total / (w * w));
    microchannel::ModulatedChannel chan{
        seg, std::vector<double>(n, um(50.0)), um(100.0)};
    const double q_ch = ml_per_min(32.3) / (w / um(150.0));
    const auto res = microchannel::evaluate_modulated_channel(
        chan, q, um(150.0), q_ch, celsius_to_kelvin(27.0), water, 130.0);
    t.add_row({"single-phase water, Table I 100 um",
               fmt(kelvin_to_celsius(res.peak_wall_temperature), 1),
               fmt(to_bar(res.pressure_drop), 3), "-", "n/a",
               fmt(res.pumping_power * (w / um(150.0)) * 1e3, 2),
               fmt(kelvin_to_celsius(celsius_to_kelvin(27.0)) +
                       total / (1000.0 * 4183.0 * q_ch * (w / um(150.0))),
                   2)});
  }
  std::cout << t << '\n';

  std::cout
      << "Reading: deep channels boil comfortably; shrinking the cavity\n"
         "to TSV-compatible heights multiplies the mass flux and the\n"
         "two-phase pressure drop until dry-out/pressure become the\n"
         "binding constraints - the scaling challenge the paper names.\n";
  return 0;
}
