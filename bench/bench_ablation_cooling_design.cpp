// Ablation of the cooling-design choices DESIGN.md calls out:
//  (a) cavity count  — why the 4-tier stack runs cooler (more cavities);
//  (b) coolant choice — why Section II-C rejects dielectric liquids;
//  (c) cavity model  — homogenized ("porous-media") vs discrete
//      per-channel, across the Table I flow range.
#include <iostream>

#include "arch/mpsoc.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/pump.hpp"
#include "thermal/rc_model.hpp"

namespace {

using namespace tac3d;

/// Max-power 2-tier stack at the given flow, returning the peak core
/// temperature [K]; the coolant of every cavity can be overridden.
double peak_at(arch::Mpsoc3D& soc, double q_per_cavity) {
  soc.model().set_all_flows(q_per_cavity);
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
  const auto temps = soc.model().steady_state();
  return soc.max_core_temp(temps);
}

thermal::StackSpec with_coolant(thermal::StackSpec spec,
                                const microchannel::Coolant& coolant) {
  for (auto& layer : spec.layers) {
    if (layer.kind == thermal::LayerKind::kCavity) layer.coolant = coolant;
  }
  return spec;
}

}  // namespace

int main() {
  bench::banner(
      "ABLATION - cooling design choices",
      "cavity count (4-tier advantage), coolant choice (dielectric "
      "rejection, Section II-C), cavity model (porous-media vs discrete)");

  const auto pump = microchannel::PumpModel::table1();

  // (a) cavity count: 2-tier (2 cavities) vs 4-tier (4 cavities), same
  // chip and total power.
  {
    TextTable t;
    t.set_header({"Stack", "Cavities", "Peak core T [C] @ max flow",
                  "@ min flow"});
    for (int tiers : {2, 4}) {
      arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
          tiers, arch::CoolingKind::kLiquidCooled,
          thermal::GridOptions{16, 16}, arch::NiagaraConfig::paper()});
      const double hi = peak_at(soc, pump.q_max());
      const double lo = peak_at(soc, pump.q_min());
      t.add_row({std::to_string(tiers) + "-tier",
                 std::to_string(soc.model().n_cavities()),
                 fmt(kelvin_to_celsius(hi), 1), fmt(kelvin_to_celsius(lo), 1)});
    }
    std::cout << "(a) Cavity count\n" << t << '\n';
  }

  // (b) coolant choice: water vs dielectric FC-72-like fluid.
  {
    TextTable t;
    t.set_header({"Coolant", "vol. heat capacity [MJ/m3K]",
                  "Peak core T [C] @ max flow"});
    for (const bool use_water : {true, false}) {
      const auto coolant =
          use_water
              ? microchannel::water(celsius_to_kelvin(27.0))
              : microchannel::dielectric_fc72(celsius_to_kelvin(27.0));
      auto spec = with_coolant(
          arch::build_stack(arch::NiagaraConfig::paper(), 2,
                            arch::CoolingKind::kLiquidCooled),
          coolant);
      thermal::RcModel model(spec, thermal::GridOptions{16, 16});
      model.set_all_flows(pump.q_max());
      // Full-power map as in (a).
      arch::Mpsoc3D ref(arch::Mpsoc3D::Options{
          2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{16, 16},
          arch::NiagaraConfig::paper()});
      std::vector<arch::CoreState> cores(8, {1.0, 4});
      model.set_element_powers(ref.element_powers(cores, {}));
      const auto temps = model.steady_state();
      t.add_row({coolant.name,
                 fmt(coolant.volumetric_heat_capacity() / 1e6, 2),
                 fmt(kelvin_to_celsius(model.max_temperature(temps)), 1)});
    }
    std::cout << "(b) Coolant choice (paper: dielectric fluids 'not "
                 "acceptable')\n"
              << t << '\n';
  }

  // (c) cavity model: homogenized vs discrete across the flow range.
  {
    TextTable t;
    t.set_header({"Flow [ml/min/cavity]", "Homogenized peak [C]",
                  "Discrete peak [C]", "Error [% of rise]"});
    arch::Mpsoc3D coarse(arch::Mpsoc3D::Options{
        2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{16, 16},
        arch::NiagaraConfig::paper()});
    thermal::GridOptions fine;
    fine.rows = 32;
    fine.discrete_channels = true;
    arch::Mpsoc3D detailed(arch::Mpsoc3D::Options{
        2, arch::CoolingKind::kLiquidCooled, fine,
        arch::NiagaraConfig::paper()});
    for (const double ml : {10.0, 20.0, 32.3}) {
      const double th = peak_at(coarse, ml_per_min(ml));
      const double td = peak_at(detailed, ml_per_min(ml));
      const double rise = td - celsius_to_kelvin(27.0);
      t.add_row({fmt(ml, 1), fmt(kelvin_to_celsius(th), 2),
                 fmt(kelvin_to_celsius(td), 2),
                 fmt(100.0 * (th - td) / rise, 2)});
    }
    std::cout << "(c) Cavity model (porous-media validation)\n" << t;
  }
  return 0;
}
