// Regenerates the Section II-C scalability comparison: the maximal
// junction temperature rise of a chip stack with a 1 cm2 footprint and
// aligned 250 W/cm2 hot spots on three active tiers — inter-tier
// cooling with four fluid cavities vs conventional back-side cooling.
// Paper: ~55 K (inter-tier) vs catastrophic ~223 K (back-side).
#include <iostream>

#include "arch/stacks.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/rc_model.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "SCALABILITY - inter-tier vs back-side cooling, 3 active tiers",
      "55 K maximal junction temperature rise with four fluid cavities "
      "vs 223 K with back-side cooling at 250 W/cm2 aligned hot spots");

  const double hotspot = w_per_cm2(250.0);
  const double background = w_per_cm2(50.0);
  const auto pump = microchannel::PumpModel::table1();

  TextTable t;
  t.set_header({"Cooling", "Cavities", "Total power [W]",
                "Max junction rise [K]", "Paper [K]", "Solve [ms]"});

  for (const bool inter_tier : {true, false}) {
    bench::Stopwatch watch;
    auto spec = arch::build_scalability_stack(3, inter_tier, hotspot,
                                              background);
    thermal::RcModel model(spec, thermal::GridOptions{20, 20});
    if (inter_tier) {
      model.set_all_flows(pump.q_max());
    }
    const auto powers = arch::scalability_element_powers(
        model.grid(), hotspot, background);
    model.set_element_powers(powers);
    const auto temps = model.steady_state();
    const double rise =
        model.max_temperature(temps) - model.grid().spec().coolant_inlet;

    t.add_row({inter_tier ? "inter-tier (4 cavities)" : "back-side only",
               std::to_string(model.n_cavities()),
               fmt(model.total_power(), 1), fmt(rise, 1),
               inter_tier ? "55" : "223", fmt(watch.millis(), 1)});
  }
  std::cout << t << '\n';
  std::cout << "Back-side cooling forces every hot spot's flux through the\n"
               "full stack of inter-tier bond layers; inter-tier cavities\n"
               "remove the heat adjacent to each junction.\n";
  return 0;
}
