// Regenerates Fig. 4 ("Heat removal of a hot spot"): uniform vs
// fluid-focused cavity designs at the same pump pressure head. Guiding
// structures lower the hydraulic resistance from the inlet to the
// hot-spot channels, raising the local flow; the paper notes the
// aggregate flow rate drops, which is why focusing is reserved for
// tiers with a high heat-flux contrast.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/duct.hpp"
#include "microchannel/flow_network.hpp"

namespace {

using namespace tac3d;
using namespace tac3d::microchannel;

struct CavityDesign {
  std::string name;
  std::vector<double> distributor_factor;  // per channel, x channel g
};

struct CavityResult {
  double aggregate_flow = 0.0;   // m^3/s
  double hotspot_flow = 0.0;     // m^3/s per hot channel (mean)
  double peak_wall_temp = 0.0;   // K
};

constexpr int kChannels = 66;
constexpr double kLength = 10e-3;

bool is_hot(int ch) { return ch >= 27 && ch < 40; }

CavityResult evaluate(const CavityDesign& design, double head_pa,
                      const Coolant& water) {
  const RectDuct duct{50e-6, 100e-6};
  const double g_ch = channel_conductance(duct, kLength, water);

  HydraulicNetwork net;
  const auto inlet = net.add_fixed_node(head_pa);
  const auto outlet = net.add_fixed_node(0.0);
  std::vector<std::int32_t> edges;
  for (int ch = 0; ch < kChannels; ++ch) {
    const auto entry = net.add_node();
    net.add_edge(inlet, entry, design.distributor_factor[ch] * g_ch);
    edges.push_back(net.add_edge(entry, outlet, g_ch));
  }
  const NetworkSolution sol = net.solve();

  const double pitch = 150e-6;
  const double h = heat_transfer_coefficient(duct, water);
  const double eta = fin_efficiency(h, 130.0, 100e-6, duct.height);
  const double g_len = h * (duct.width + 2.0 * eta * duct.height);

  CavityResult res;
  int hot_count = 0;
  for (int ch = 0; ch < kChannels; ++ch) {
    const double q_flux = is_hot(ch) ? w_per_cm2(250.0) : w_per_cm2(50.0);
    const double q_ch = q_flux * pitch * kLength;  // W into this channel
    const double flow = sol.edge_flows[edges[ch]];
    res.aggregate_flow += flow;
    if (is_hot(ch)) {
      res.hotspot_flow += flow;
      ++hot_count;
    }
    const double mcp = water.density * water.specific_heat * flow;
    const double t_out = celsius_to_kelvin(27.0) + q_ch / mcp;
    const double superheat = q_flux * pitch / g_len;
    res.peak_wall_temp = std::max(res.peak_wall_temp, t_out + superheat);
  }
  res.hotspot_flow /= hot_count;
  return res;
}

}  // namespace

int main() {
  bench::banner(
      "FIG. 4 - heat removal of a hot spot: uniform vs fluid-focused",
      "guiding structures reduce the flow resistance from inlet to the "
      "hot spot; aggregate flow rate is reduced");

  const Coolant water_27c = water(celsius_to_kelvin(27.0));

  CavityDesign uniform{"uniform", std::vector<double>(kChannels, 3.0)};
  CavityDesign focused{"fluid-focused", std::vector<double>(kChannels, 1.2)};
  for (int ch = 0; ch < kChannels; ++ch) {
    if (is_hot(ch)) focused.distributor_factor[ch] = 12.0;
  }

  // Pressure head chosen so the uniform design draws the Table I
  // maximum aggregate flow (~32.3 ml/min for this cavity).
  const RectDuct duct{50e-6, 100e-6};
  const double g_ch = channel_conductance(duct, kLength, water_27c);
  const double g_series = 1.0 / (1.0 / (3.0 * g_ch) + 1.0 / g_ch);
  const double head = ml_per_min(32.3) / (kChannels * g_series);

  TextTable t;
  t.set_header({"Design", "Aggregate flow [ml/min]",
                "Hot-spot channel flow [ml/min]", "Peak hot-spot wall T [C]"});
  CavityResult results[2];
  const CavityDesign* designs[2] = {&uniform, &focused};
  for (int i = 0; i < 2; ++i) {
    results[i] = evaluate(*designs[i], head, water_27c);
    t.add_row({designs[i]->name, fmt(to_ml_per_min(results[i].aggregate_flow), 2),
               fmt(to_ml_per_min(results[i].hotspot_flow), 4),
               fmt(kelvin_to_celsius(results[i].peak_wall_temp), 1)});
  }
  std::cout << t << '\n';

  bench::result_line(
      "Hot-spot flow gain (focused/uniform)",
      results[1].hotspot_flow / results[0].hotspot_flow, "x", ">1");
  bench::result_line(
      "Aggregate flow change (focused/uniform)",
      results[1].aggregate_flow / results[0].aggregate_flow, "x",
      "<1 (paper: aggregate flow rate is reduced)");
  bench::result_line(
      "Hot-spot peak reduction",
      kelvin_to_celsius(results[0].peak_wall_temp) -
          kelvin_to_celsius(results[1].peak_wall_temp),
      "K", "hot spot cooled (Fig. 4b)");
  return 0;
}
