// Regenerates Table I of the paper ("Thermal and floorplan parameters
// deployed in the 3D MPSoC model") from the library's model constants,
// and checks the internal consistency of the pump calibration.
#include <iostream>

#include "arch/calibration.hpp"
#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/pump.hpp"
#include "thermal/material.hpp"

int main() {
  using namespace tac3d;
  namespace mat = thermal::materials;

  bench::banner("TABLE I - thermal and floorplan parameters",
                "Table I of Sabry et al., DATE 2011");

  const auto chip = arch::NiagaraConfig::paper();
  const auto spec = arch::build_stack(chip, 2, arch::CoolingKind::kLiquidCooled);
  const auto water = microchannel::water_table1();
  const auto pump = microchannel::PumpModel::table1();

  TextTable t;
  t.set_header({"Parameter", "Model value", "Table I value"});
  auto row = [&t](const std::string& name, const std::string& model,
                  const std::string& paper) {
    t.add_row({name, model, paper});
  };
  row("Silicon conductivity",
      fmt(mat::silicon().conductivity, 0) + " W/(m K)", "130 W/(m K)");
  row("Silicon capacitance",
      fmt(mat::silicon().volumetric_heat_capacity, 0) + " J/(m3 K)",
      "1635660 J/(m3 K)");
  row("Wiring layer conductivity",
      fmt(mat::wiring().conductivity, 2) + " W/(m K)", "2.25 W/(m K)");
  row("Wiring layer capacitance",
      fmt(mat::wiring().volumetric_heat_capacity, 0) + " J/(m3 K)",
      "2174502 J/(m3 K)");
  row("Water conductivity", fmt(water.conductivity, 1) + " W/(m K)",
      "0.6 W/(m K)");
  row("Water capacitance", fmt(water.specific_heat, 0) + " J/(kg K)",
      "4183 J/(kg K)");
  row("Heat sink conductance (air only)", "10 W/K", "10 W/K");
  row("Heat sink capacitance (air only)", "140 J/K", "140 J/K");
  row("Die thickness (one stack)", "0.15 mm", "0.15 mm");
  row("Area per core", fmt(chip.core_area * 1e6, 0) + " mm2", "10 mm2");
  row("Area per L2 cache", fmt(chip.l2_area * 1e6, 0) + " mm2", "19 mm2");
  row("Total area of each layer (2-tier)",
      fmt(chip.layer_area * 1e6, 0) + " mm2", "115 mm2");
  row("Inter-tier material thickness", "0.1 mm", "0.1 mm");
  row("Channel width", "0.05 mm", "0.05 mm");
  row("Channel pitch", "0.15 mm", "0.15 mm");
  row("Flow rate range (per cavity)",
      fmt(to_ml_per_min(pump.q_min()), 1) + " - " +
          fmt(to_ml_per_min(pump.q_max()), 1) + " ml/min",
      "10 - 32.3 ml/min");
  const int cavities_2tier = spec.n_cavities();
  row("Pumping network power (2-tier, " + std::to_string(cavities_2tier) +
          " cavities)",
      fmt(pump.power(0, cavities_2tier), 2) + " - " +
          fmt(pump.power(pump.levels() - 1, cavities_2tier), 3) + " W",
      "3.5 - 11.176 W");
  std::cout << t << '\n';

  std::cout << "Consistency: the Table I pump endpoints are reproduced by a\n"
               "power linear in total flow (P = "
            << fmt(pump.coefficient() * ml_per_min(1.0), 3)
            << " W per ml/min of total flow) applied to the 2-cavity "
               "2-tier stack.\n";
  return 0;
}
