// Sweep-runner throughput: the paper's seven Fig. 6/7 configurations
// executed as a batch. Four legs isolate where the time goes:
//
//   serial nocache   bank off, structures off — every scenario pays
//                    full construction (the PR 1/2 baseline regime)
//   serial compile   fresh ScenarioBank — first touch of every key,
//                    misses included
//   serial cached    the same bank, warm — the steady-state regime of
//                    repeated design-space sweeps: construction-free
//   parallel cached  warm bank on the worker pool
//
// (All four pin batch_width = 1 so they keep measuring the scalar
// stepping path the baselines were recorded on.)
//
// A fifth/sixth leg measures batched lockstep stepping on a seed-
// extended paper matrix (bigger same-pattern groups, the regime batching
// targets): warm-bank serial scalar vs warm-bank serial batched, one
// core stepping several same-pattern scenarios per matrix traversal
// (auto batch width, currently 6 lanes). Headline: batched_per_sec and
// the batched/serial ratio.
//
// Emits BENCH_sweep.json (scenarios/sec, setup-vs-stepping split,
// bank + structure-cache counters, batched leg) so design-space-
// exploration throughput is tracked from PR 2 onward, and cross-checks
// that neither cache tier nor lane batching perturbs a single bit of
// the metrics.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "sim/bank.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace tac3d;

std::vector<sim::Scenario> bench_scenarios() {
  return sim::ScenarioMatrix::paper_fig67()
      .workloads({power::WorkloadKind::kMaxUtil})
      .trace_seconds(30)
      .grid(thermal::GridOptions{12, 12})
      .build();
}

/// The batched leg's workload: the paper matrix swept over seeds, the
/// design-space-exploration shape (policies x stacks x seeds) whose
/// same-pattern groups are wide enough to fill 8 lanes.
std::vector<sim::Scenario> batch_scenarios() {
  return sim::ScenarioMatrix::paper_fig67()
      .workloads({power::WorkloadKind::kMaxUtil})
      .seeds({1, 2, 3, 4, 5, 6, 7, 8})
      .trace_seconds(30)
      .grid(thermal::GridOptions{12, 12})
      .build();
}

/// The fuzzy-group leg: one 8-seed group of continuously flow-modulating
/// (LC_FUZZY) scenarios — the staggered-convergence regime. Fuzzy lanes
/// run real 4-8-iteration Krylov solves whose lanes converge at
/// different iterations, so this is where mid-solve lane compaction
/// (narrowing the fused kernels as lanes finish) earns its keep; the
/// mixed matrix above is dominated by ~0-iteration warm-started steps.
std::vector<sim::Scenario> fuzzy_scenarios() {
  return sim::ScenarioMatrix{}
      .tiers({2})
      .policies({sim::PolicyKind::kLcFuzzy})
      .workloads({power::WorkloadKind::kMaxUtil})
      .seeds({1, 2, 3, 4, 5, 6, 7, 8})
      .trace_seconds(30)
      .grid(thermal::GridOptions{12, 12})
      .build();
}

bool same_metrics(const sim::SweepReport& a, const sim::SweepReport& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::SimMetrics& ma = a.at(i).metrics;
    const sim::SimMetrics& mb = b.at(i).metrics;
    if (ma.peak_temp != mb.peak_temp || ma.chip_energy != mb.chip_energy ||
        ma.pump_energy != mb.pump_energy ||
        ma.any_hot_time != mb.any_hot_time ||
        ma.migrations != mb.migrations) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::banner(
      "SWEEP - scenario batch throughput (BENCH_sweep.json)",
      "Figs. 6/7 regime: the full stack x policy matrix evaluated as one "
      "batch; the ScenarioBank compiles each configuration once (trace / "
      "model / steady tiers) and hands out clone-and-reset sessions");

  const auto scenarios = bench_scenarios();

  auto run = [&](int jobs, bool use_bank,
                 std::shared_ptr<sim::ScenarioBank> bank) {
    sim::SweepOptions opts;
    opts.jobs = jobs;
    opts.use_bank = use_bank;
    opts.bank = std::move(bank);
    // The no-cache leg turns off symbolic sharing too (a bank always
    // shares structures through its own cache, so the flag only matters
    // there).
    opts.share_structures = use_bank;
    // These legacy legs track the scalar stepping path; the batched legs
    // below measure lockstep batching separately.
    opts.batch_width = 1;
    return sim::run_sweep(scenarios, opts);
  };

  // The parallel leg measures real concurrency, so it never asks for
  // more workers than physical cores: TAC3D_JOBS beyond the core count
  // only timeshares a core between workers (that was the "parallel
  // slower than serial" regression — 2 pinned jobs on a 1-core host).
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw_cores = hw_raw > 0 ? static_cast<int>(hw_raw) : 1;
  const int parallel_jobs = std::min(sim::resolve_jobs(0), hw_cores);

  const auto bank = std::make_shared<sim::ScenarioBank>();
  const sim::SweepReport cold = run(1, false, nullptr);
  const sim::SweepReport compile = run(1, true, bank);  // first touch
  const sim::SweepReport cached = run(1, true, bank);   // warm bank

  // Telemetry A/B on the same warm bank: the registry is compiled in
  // unconditionally, so the honest overhead measurement is publication
  // enabled vs disabled within one binary. check_bench_regression.py
  // gates telemetry_overhead_ratio >= 0.97.
  obs::set_metrics_enabled(false);
  const sim::SweepReport telem_off = run(1, true, bank);
  obs::set_metrics_enabled(true);
  const obs::Snapshot snap_before = obs::snapshot();
  const sim::SweepReport telem_on = run(1, true, bank);
  const obs::Snapshot phases = obs::snapshot().since(snap_before);

  // On a single-core host the parallel leg cannot measure concurrency —
  // two workers would just timeshare the core and the leg reads as a
  // regression. Skip it there: reuse the warm serial report for its
  // slots and flag the skip in the JSON so the gate knows the numbers
  // are placeholders.
  const bool run_parallel = hw_cores > 1;
  // JSON value of parallel-leg columns when the leg is skipped:
  // JsonObject emits non-finite doubles as null.
  const double skipped_marker = std::numeric_limits<double>::quiet_NaN();
  const sim::SweepReport parallel =
      run_parallel ? run(parallel_jobs, true, bank) : cached;

  // Batched lockstep legs: same warm-bank serial regime, scalar vs
  // batched, on the seed-extended matrix (one core stepping several
  // same-pattern scenarios per matrix traversal at the auto width).
  const auto bscenarios = batch_scenarios();
  auto run_batchset = [&](int width) {
    sim::SweepOptions opts;
    opts.jobs = 1;
    opts.bank = bank;
    opts.batch_width = width;
    return sim::run_sweep(bscenarios, opts);
  };
  run_batchset(1);  // warm the bank's seed-extended entries
  const sim::SweepReport bserial = run_batchset(1);
  const sim::SweepReport bbatched = run_batchset(0);  // auto width

  // Fuzzy-group legs: one same-pattern group of staggered-convergence
  // lanes, scalar vs batched (where lane compaction pays).
  const auto fscenarios = fuzzy_scenarios();
  auto run_fuzzyset = [&](int width) {
    sim::SweepOptions opts;
    opts.jobs = 1;
    opts.bank = bank;
    opts.batch_width = width;
    return sim::run_sweep(fscenarios, opts);
  };
  run_fuzzyset(1);  // warm the bank's fuzzy entries
  const sim::SweepReport fserial = run_fuzzyset(1);
  const sim::SweepReport fbatched = run_fuzzyset(0);  // auto width

  // Limit-cycle replay leg: one long-horizon exactly-periodic closed
  // loop (kPeriodic workload, 12 s period, banded solver) stepped to
  // completion with replay on vs off. Once the warm-up transient decays
  // the loop bitwise-recurs; the replay path locks onto that and
  // fast-forwards whole cycles from its journal with zero linear
  // solves, so the on/off steps-per-second ratio is the headline number
  // of this ceiling lever. Parity is asserted bitwise like every other
  // leg: identical metrics AND identical final temperature vectors.
  sim::Scenario periodic;
  periodic.label = "2-tier LC_LB periodic long-horizon";
  periodic.tiers = 2;
  periodic.policy = sim::PolicyKind::kLcLb;
  periodic.workload = power::WorkloadKind::kPeriodic;
  periodic.seed = 7;
  periodic.trace_seconds = 2400;
  periodic.grid = thermal::GridOptions{8, 8};
  // The direct solver bitwise-recurs once the loop settles (its solve
  // is a pure function of the current state); the iterative kinds carry
  // convergence history and only lock on true fixed points.
  periodic.sim.solver = sparse::SolverKind::kBandedLu;

  struct ReplayLeg {
    double seconds = 0.0;
    int steps = 0;
    sim::SimMetrics metrics;
    std::vector<double> temps;
    std::uint64_t cycles = 0, steps_replayed = 0, solves_skipped = 0;
  };
  const auto run_replay_leg = [&](bool replay_enabled) {
    sim::Scenario s = periodic;
    s.sim.limit_cycle_replay = replay_enabled;
    sim::ScenarioInstance inst = sim::instantiate(s);
    sim::SimulationSession session = inst.session();
    ReplayLeg leg;
    const bench::Stopwatch sw;
    leg.steps = session.run_to_end();
    leg.seconds = sw.seconds();
    leg.metrics = session.metrics();
    leg.temps.assign(session.temperatures().begin(),
                     session.temperatures().end());
    leg.cycles = session.replay_cycles();
    leg.steps_replayed = session.replay_steps();
    leg.solves_skipped = session.replay_solves_skipped();
    return leg;
  };
  const ReplayLeg replay_off_leg = run_replay_leg(false);
  const ReplayLeg replay_on_leg = run_replay_leg(true);
  const bool replay_bitwise =
      replay_on_leg.steps == replay_off_leg.steps &&
      replay_on_leg.temps == replay_off_leg.temps &&
      replay_on_leg.metrics.peak_temp == replay_off_leg.metrics.peak_temp &&
      replay_on_leg.metrics.chip_energy ==
          replay_off_leg.metrics.chip_energy &&
      replay_on_leg.metrics.pump_energy ==
          replay_off_leg.metrics.pump_energy &&
      replay_on_leg.metrics.any_hot_time ==
          replay_off_leg.metrics.any_hot_time &&
      replay_on_leg.metrics.offered_work ==
          replay_off_leg.metrics.offered_work &&
      replay_on_leg.metrics.lost_work == replay_off_leg.metrics.lost_work &&
      replay_on_leg.metrics.avg_flow_fraction ==
          replay_off_leg.metrics.avg_flow_fraction &&
      replay_on_leg.metrics.migrations == replay_off_leg.metrics.migrations;
  const double replay_off_sps =
      replay_off_leg.steps / replay_off_leg.seconds;
  const double replay_on_sps = replay_on_leg.steps / replay_on_leg.seconds;
  const double replay_speedup = replay_on_sps / replay_off_sps;

  for (const auto* r : {&cold, &compile, &cached, &parallel, &telem_off,
                        &telem_on, &bserial, &bbatched, &fserial,
                        &fbatched}) {
    if (!r->all_ok()) {
      for (const auto& e : r->errors()) std::cerr << "ERROR: " << e << '\n';
      return 1;
    }
  }
  const bool bitwise_ok = same_metrics(cold, compile) &&
                          same_metrics(cold, cached) &&
                          same_metrics(cold, parallel) &&
                          same_metrics(cold, telem_off) &&
                          same_metrics(cold, telem_on) &&
                          same_metrics(bserial, bbatched) &&
                          same_metrics(fserial, fbatched) && replay_bitwise;

  const double telem_off_per_sec = telem_off.size() / telem_off.wall_seconds();
  const double telem_on_per_sec = telem_on.size() / telem_on.wall_seconds();
  const double telem_ratio = telem_on_per_sec / telem_off_per_sec;

  int batched_lanes_max = 0;
  int batched_count = 0;
  for (const auto& r : bbatched.results()) {
    if (r.batch_lanes > 1) {
      ++batched_count;
      batched_lanes_max = std::max(batched_lanes_max, r.batch_lanes);
    }
  }
  const double batched_per_sec = bbatched.size() / bbatched.wall_seconds();
  const double batched_baseline_per_sec =
      bserial.size() / bserial.wall_seconds();
  const double batched_ratio = batched_per_sec / batched_baseline_per_sec;

  const double fuzzy_serial_per_sec = fserial.size() / fserial.wall_seconds();
  const double fuzzy_group_per_sec =
      fbatched.size() / fbatched.wall_seconds();
  const double fuzzy_ratio = fuzzy_group_per_sec / fuzzy_serial_per_sec;

  TextTable t;
  t.set_header({"Configuration", "jobs", "wall [s]", "scenarios/s",
                "setup [s]", "stepping [s]", "setup frac", "tail frac"});
  const auto add = [&](const char* label, const sim::SweepReport& r) {
    t.add_row({label, fmt(r.jobs_used(), 0), fmt(r.wall_seconds(), 2),
               fmt(r.size() / r.wall_seconds(), 2),
               fmt(r.setup_seconds_total(), 2),
               fmt(r.stepping_seconds_total(), 2),
               fmt_pct(r.setup_fraction()), fmt_pct(r.tail_fraction())});
  };
  add("serial, no caches", cold);
  add("serial, bank compile (cold)", compile);
  add("serial, bank warm", cached);
  add("serial, warm, telemetry off", telem_off);
  add("serial, warm, telemetry on", telem_on);
  add(run_parallel ? "parallel, bank warm"
                   : "parallel, bank warm (skipped: 1 core)",
      parallel);
  add("serial scalar, warm (seeded matrix)", bserial);
  add("serial batched, warm (seeded matrix)", bbatched);
  add("serial scalar, warm (fuzzy group)", fserial);
  add("serial batched, warm (fuzzy group)", fbatched);
  std::cout << t << '\n';

  bench::result_line("Telemetry overhead ratio (on/off, warm serial)",
                     telem_ratio, "x");
  // Phase breakdown straight from the registry snapshot delta of the
  // telemetry-on leg: where the sweep's wall time went, as published by
  // the sessions themselves.
  {
    std::cout << "  Registry phase breakdown (telemetry-on leg):";
    for (const char* name :
         {"sweep/setup_seconds", "sweep/stepping_seconds",
          "sweep/solve_seconds", "sweep/tail_seconds"}) {
      const auto it = phases.histograms.find(name);
      if (it == phases.histograms.end()) continue;
      std::cout << " " << name << "=" << fmt(it->second.sum(), 2) << "s";
    }
    std::cout << '\n';
  }
  bench::result_line("Batched scenarios/s", batched_per_sec, "scn/s");
  bench::result_line("Batched vs serial (warm, same matrix)", batched_ratio,
                     "x");
  std::cout << "  Batched lanes: " << batched_count << " of "
            << bbatched.size() << " scenarios in lockstep batches up to "
            << batched_lanes_max << " wide (chunk width "
            << bbatched.batch_width_used() << ", "
            << bbatched.batch_compaction_events()
            << " mid-solve compactions)\n";
  bench::result_line("Fuzzy-group batched scenarios/s", fuzzy_group_per_sec,
                     "scn/s");
  bench::result_line("Fuzzy-group batched vs serial", fuzzy_ratio, "x");
  std::cout << "  Fuzzy-group mid-solve compactions: "
            << fbatched.batch_compaction_events() << " (chunk width "
            << fbatched.batch_width_used() << ")\n";
  bench::result_line("Replay-off steps/s (periodic long-horizon)",
                     replay_off_sps, "steps/s");
  bench::result_line("Replay-on steps/s", replay_on_sps, "steps/s");
  bench::result_line("Replay speedup (on/off)", replay_speedup, "x");
  std::cout << "  Replay: " << replay_on_leg.steps_replayed << " of "
            << replay_on_leg.steps << " steps fast-forwarded over "
            << replay_on_leg.cycles << " replay bursts, "
            << replay_on_leg.solves_skipped << " linear solves skipped\n";

  const auto& cache = cached.structure_cache();
  const sim::BankCounters counters = bank->counters();
  bench::result_line("Distinct patterns analyzed",
                     static_cast<double>(cache->size()), "");
  bench::result_line("Structure-cache hits",
                     static_cast<double>(cache->hits()), "");
  bench::result_line("Bank steady-tier entries",
                     static_cast<double>(bank->steady_entries()), "");
  bench::result_line("Bank steady hits",
                     static_cast<double>(counters.steady_hits), "");
  bench::result_line("Bank steady misses",
                     static_cast<double>(counters.steady_misses), "");

  // Per-job utilization of the parallel run: busy/wall per worker. Low
  // utilization means pool startup or imbalance; ~1.0 on every worker
  // with no speedup means the workers are timesharing cores (the
  // "TAC3D_JOBS > hardware cores" footgun — resolve_jobs honors the pin
  // verbatim by design, which is why this bench clamps its parallel leg
  // to physical cores itself, above).
  const std::vector<double> util = parallel.job_utilization();
  double util_min = 1.0, util_sum = 0.0;
  std::cout << "  Parallel per-job utilization:";
  for (std::size_t j = 0; j < util.size(); ++j) {
    std::cout << " j" << j << "=" << fmt(util[j], 2);
    util_min = std::min(util_min, util[j]);
    util_sum += util[j];
  }
  const double util_avg = util.empty() ? 0.0 : util_sum / util.size();
  std::cout << "\n  Metrics bitwise identical across all runs: "
            << (bitwise_ok ? "yes" : "NO — BUG") << "\n\n";

  // The telemetry-on leg's registry delta as a machine-readable phase
  // breakdown (seconds by phase plus the headline counters), so
  // dashboards can track where sweep time goes without re-deriving it
  // from per-leg wall clocks.
  bench::JsonObject phase_json;
  {
    const auto phase_sum = [&](const char* name) {
      const auto it = phases.histograms.find(name);
      return it == phases.histograms.end() ? 0.0 : it->second.sum();
    };
    const auto phase_count = [&](const char* name) {
      const auto it = phases.counters.find(name);
      return it == phases.counters.end()
                 ? std::int64_t{0}
                 : static_cast<std::int64_t>(it->second);
    };
    phase_json.set("setup_seconds", phase_sum("sweep/setup_seconds"))
        .set("stepping_seconds", phase_sum("sweep/stepping_seconds"))
        .set("solve_seconds", phase_sum("sweep/solve_seconds"))
        .set("tail_seconds", phase_sum("sweep/tail_seconds"))
        .set("steps", phase_count("sweep/steps"))
        .set("solver_solves", phase_count("solver/solves"))
        .set("solver_iterations", phase_count("solver/iterations"))
        .set("predictor_hits", phase_count("predictor/hits"));
  }

  bench::JsonObject root;
  root.set("bench", "bench_sweep_throughput")
      .set("scenarios", static_cast<int>(scenarios.size()))
      .set("trace_seconds", 30)
      .set("grid", "12x12 compact")
      .set("serial_nocache_scenarios_per_sec",
           cold.size() / cold.wall_seconds())
      .set("serial_compile_scenarios_per_sec",
           compile.size() / compile.wall_seconds())
      .set("serial_cached_scenarios_per_sec",
           cached.size() / cached.wall_seconds())
      // When the parallel leg is skipped (single-core host) its columns
      // are emitted as null — JsonObject renders non-finite doubles as
      // null — so downstream tooling sees "not measured", never a stale
      // copy of the serial numbers.
      .set("parallel_cached_scenarios_per_sec",
           run_parallel ? parallel.size() / parallel.wall_seconds()
                        : skipped_marker)
      .set("serial_nocache_setup_seconds", cold.setup_seconds_total())
      .set("serial_nocache_stepping_seconds", cold.stepping_seconds_total())
      .set("serial_nocache_setup_fraction", cold.setup_fraction())
      .set("serial_compile_setup_seconds", compile.setup_seconds_total())
      .set("serial_compile_setup_fraction", compile.setup_fraction())
      .set("serial_cached_setup_seconds", cached.setup_seconds_total())
      .set("serial_cached_stepping_seconds", cached.stepping_seconds_total())
      .set("serial_cached_setup_fraction", cached.setup_fraction())
      .set("parallel_cached_setup_fraction",
           run_parallel ? parallel.setup_fraction() : skipped_marker)
      .set("telemetry_off_per_sec", telem_off_per_sec)
      .set("telemetry_on_per_sec", telem_on_per_sec)
      .set("telemetry_overhead_ratio", telem_ratio)
      .set("registry_phases", phase_json)
      .set("batchset_scenarios", static_cast<int>(bscenarios.size()))
      .set("batched_serial_baseline_per_sec", batched_baseline_per_sec)
      .set("batched_per_sec", batched_per_sec)
      .set("batched_vs_serial_ratio", batched_ratio)
      .set("batched_serial_tail_fraction", bserial.tail_fraction())
      .set("batched_tail_fraction", bbatched.tail_fraction())
      .set("batched_lanes_max", batched_lanes_max)
      .set("batched_scenario_count", batched_count)
      .set("batched_width_used", bbatched.batch_width_used())
      .set("batched_compaction_events",
           static_cast<std::int64_t>(bbatched.batch_compaction_events()))
      .set("batched_fuzzy_serial_per_sec", fuzzy_serial_per_sec)
      .set("batched_fuzzy_group_per_sec", fuzzy_group_per_sec)
      .set("batched_fuzzy_vs_serial_ratio", fuzzy_ratio)
      .set("batched_fuzzy_serial_tail_fraction", fserial.tail_fraction())
      .set("batched_fuzzy_tail_fraction", fbatched.tail_fraction())
      .set("batched_fuzzy_compaction_events",
           static_cast<std::int64_t>(fbatched.batch_compaction_events()))
      .set("bank_trace_hits", static_cast<std::int64_t>(counters.trace_hits))
      .set("bank_trace_misses",
           static_cast<std::int64_t>(counters.trace_misses))
      .set("bank_model_hits", static_cast<std::int64_t>(counters.model_hits))
      .set("bank_model_misses",
           static_cast<std::int64_t>(counters.model_misses))
      .set("bank_steady_hits",
           static_cast<std::int64_t>(counters.steady_hits))
      .set("bank_steady_misses",
           static_cast<std::int64_t>(counters.steady_misses))
      .set("parallel_jobs", parallel.jobs_used())
      .set("parallel_leg", run_parallel ? "run" : "skipped_single_core")
      .set("hardware_cores", hw_cores)
      .set("parallel_job_utilization_min",
           run_parallel ? util_min : skipped_marker)
      .set("parallel_job_utilization_avg",
           run_parallel ? util_avg : skipped_marker)
      .set("replay_trace_seconds", periodic.trace_seconds)
      .set("replay_total_steps", replay_on_leg.steps)
      .set("replay_off_steps_per_sec", replay_off_sps)
      .set("replay_on_steps_per_sec", replay_on_sps)
      .set("replay_speedup", replay_speedup)
      .set("replay_cycles",
           static_cast<std::int64_t>(replay_on_leg.cycles))
      .set("replay_steps_replayed",
           static_cast<std::int64_t>(replay_on_leg.steps_replayed))
      .set("replay_solves_skipped",
           static_cast<std::int64_t>(replay_on_leg.solves_skipped))
      .set("structure_patterns", static_cast<int>(cache->size()))
      .set("structure_hits", static_cast<std::int64_t>(cache->hits()))
      .set("structure_misses", static_cast<std::int64_t>(cache->misses()))
      .set("bitwise_identical", bitwise_ok ? "yes" : "no");
  bench::write_json("BENCH_sweep.json", root);

  const std::size_t matrix_legs = run_parallel ? 6 : 5;  // parallel may skip
  bench::sweep_footer(
      scenarios.size() * matrix_legs + bscenarios.size() * 3 +
          fscenarios.size() * 3,
      parallel.jobs_used(),
      cold.wall_seconds() + compile.wall_seconds() + cached.wall_seconds() +
          telem_off.wall_seconds() + telem_on.wall_seconds() +
          (run_parallel ? parallel.wall_seconds() : 0.0) +
          bserial.wall_seconds() + bbatched.wall_seconds() +
          fserial.wall_seconds() + fbatched.wall_seconds());
  return bitwise_ok ? 0 : 1;
}
