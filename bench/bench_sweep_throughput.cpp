// Sweep-runner throughput: the paper's seven Fig. 6/7 configurations
// executed as a batch, with and without the shared StructureCache, and
// serial vs parallel. Emits BENCH_sweep.json (scenarios/sec, cache hit
// counters) so design-space-exploration throughput is tracked from PR 2
// onward, and cross-checks that cache sharing does not perturb a single
// bit of the metrics.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace tac3d;

std::vector<sim::Scenario> bench_scenarios() {
  return sim::ScenarioMatrix::paper_fig67()
      .workloads({power::WorkloadKind::kMaxUtil})
      .trace_seconds(30)
      .grid(thermal::GridOptions{12, 12})
      .build();
}

bool same_metrics(const sim::SweepReport& a, const sim::SweepReport& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const sim::SimMetrics& ma = a.at(i).metrics;
    const sim::SimMetrics& mb = b.at(i).metrics;
    if (ma.peak_temp != mb.peak_temp || ma.chip_energy != mb.chip_energy ||
        ma.pump_energy != mb.pump_energy ||
        ma.any_hot_time != mb.any_hot_time ||
        ma.migrations != mb.migrations) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::banner(
      "SWEEP - scenario batch throughput (BENCH_sweep.json)",
      "Figs. 6/7 regime: the full stack x policy matrix evaluated as one "
      "batch; StructureCache shares the symbolic solver analysis between "
      "same-geometry scenarios");

  const auto scenarios = bench_scenarios();

  auto run = [&](int jobs, bool share) {
    sim::SweepOptions opts;
    opts.jobs = jobs;
    opts.share_structures = share;
    return sim::run_sweep(scenarios, opts);
  };

  // The parallel leg measures real concurrency, so it never asks for
  // more workers than physical cores: TAC3D_JOBS beyond the core count
  // only timeshares a core between workers (that was the "parallel
  // slower than serial" regression — 2 pinned jobs on a 1-core host).
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw_cores = hw_raw > 0 ? static_cast<int>(hw_raw) : 1;
  const int parallel_jobs = std::min(sim::resolve_jobs(0), hw_cores);

  const sim::SweepReport cold = run(1, false);
  const sim::SweepReport cached = run(1, true);
  const sim::SweepReport parallel = run(parallel_jobs, true);

  for (const auto* r : {&cold, &cached, &parallel}) {
    if (!r->all_ok()) {
      for (const auto& e : r->errors()) std::cerr << "ERROR: " << e << '\n';
      return 1;
    }
  }
  const bool bitwise_ok =
      same_metrics(cold, cached) && same_metrics(cold, parallel);

  TextTable t;
  t.set_header({"Configuration", "jobs", "wall [s]", "scenarios/s"});
  const auto add = [&](const char* label, const sim::SweepReport& r) {
    t.add_row({label, fmt(r.jobs_used(), 0), fmt(r.wall_seconds(), 2),
               fmt(r.size() / r.wall_seconds(), 2)});
  };
  add("serial, no structure sharing", cold);
  add("serial, shared StructureCache", cached);
  add("parallel, shared StructureCache", parallel);
  std::cout << t << '\n';

  const auto& cache = cached.structure_cache();
  bench::result_line("Distinct patterns analyzed",
                     static_cast<double>(cache->size()), "");
  bench::result_line("Cache hits", static_cast<double>(cache->hits()), "");

  // Per-job utilization of the parallel run: busy/wall per worker. Low
  // utilization means pool startup or imbalance; ~1.0 on every worker
  // with no speedup means the workers are timesharing cores (the
  // "TAC3D_JOBS > hardware cores" footgun — resolve_jobs honors the pin
  // verbatim by design, which is why this bench clamps its parallel leg
  // to physical cores itself, above).
  const std::vector<double> util = parallel.job_utilization();
  double util_min = 1.0, util_sum = 0.0;
  std::cout << "  Parallel per-job utilization:";
  for (std::size_t j = 0; j < util.size(); ++j) {
    std::cout << " j" << j << "=" << fmt(util[j], 2);
    util_min = std::min(util_min, util[j]);
    util_sum += util[j];
  }
  const double util_avg = util.empty() ? 0.0 : util_sum / util.size();
  std::cout << "\n  Metrics bitwise identical across all runs: "
            << (bitwise_ok ? "yes" : "NO — BUG") << "\n\n";

  bench::JsonObject root;
  root.set("bench", "bench_sweep_throughput")
      .set("scenarios", static_cast<int>(scenarios.size()))
      .set("trace_seconds", 30)
      .set("grid", "12x12 compact")
      .set("serial_nocache_scenarios_per_sec",
           cold.size() / cold.wall_seconds())
      .set("serial_cached_scenarios_per_sec",
           cached.size() / cached.wall_seconds())
      .set("parallel_cached_scenarios_per_sec",
           parallel.size() / parallel.wall_seconds())
      .set("parallel_jobs", parallel.jobs_used())
      .set("hardware_cores", hw_cores)
      .set("parallel_job_utilization_min", util_min)
      .set("parallel_job_utilization_avg", util_avg)
      .set("structure_patterns", static_cast<int>(cache->size()))
      .set("structure_hits", static_cast<std::int64_t>(cache->hits()))
      .set("structure_misses", static_cast<std::int64_t>(cache->misses()))
      .set("bitwise_identical", bitwise_ok ? "yes" : "no");
  bench::write_json("BENCH_sweep.json", root);

  bench::sweep_footer(scenarios.size() * 3, parallel.jobs_used(),
                      cold.wall_seconds() + cached.wall_seconds() +
                          parallel.wall_seconds());
  return bitwise_ok ? 0 : 1;
}
