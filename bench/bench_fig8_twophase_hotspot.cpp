// Regenerates Fig. 8: local hot-spot test of the silicon
// micro-evaporator (R245fa, 135 channels of 85 um, 5x7 heater array with
// a 15x hot spot on the third row): per-sensor-row heat flux, HTC and
// fluid/wall/base temperatures, plus the Section IV-B ratio claims.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "twophase/evaporator.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::twophase;

  bench::banner(
      "FIG. 8 - local hot-spot test of a silicon micro-evaporator",
      "refrigerant enters at 30 C and leaves at 29.5 C; HTC under the hot "
      "spot ~8x higher; wall superheat only ~2x higher (vs 15x with "
      "water)");

  const EvaporatorDesign design = EvaporatorDesign::fig8_vehicle();
  const HeaterMap heaters = HeaterMap::fig8_hotspot();
  const EvaporatorResult res = simulate_evaporator(design, heaters, 25);

  TextTable t;
  t.set_header({"Sensor row", "Heat flux [W/m2]", "HTC [W/m2K]",
                "Fluid T [C]", "Wall T [C]", "Base T [C]"});
  for (std::size_t r = 0; r < res.rows.size(); ++r) {
    const EvaporatorRow& row = res.rows[r];
    t.add_row({std::to_string(r + 1), fmt(row.heat_flux, 0),
               fmt(row.htc, 0), fmt(kelvin_to_celsius(row.fluid_temp), 2),
               fmt(kelvin_to_celsius(row.wall_temp), 2),
               fmt(kelvin_to_celsius(row.base_temp), 2)});
  }
  std::cout << t << '\n';

  const EvaporatorRow& cold = res.rows[0];
  const EvaporatorRow& hot = res.rows[2];
  const double superheat_cold =
      kelvin_to_celsius(cold.wall_temp) - kelvin_to_celsius(cold.fluid_temp);
  const double superheat_hot =
      kelvin_to_celsius(hot.wall_temp) - kelvin_to_celsius(hot.fluid_temp);

  bench::result_line("Inlet saturation temperature",
                     kelvin_to_celsius(design.inlet_sat_temp), "C", "30 C");
  bench::result_line("Outlet saturation temperature",
                     kelvin_to_celsius(res.outlet_t_sat), "C", "29.5 C");
  bench::result_line("Heat flux ratio hot/cold row",
                     hot.heat_flux / cold.heat_flux, "x", "15.1x");
  bench::result_line("HTC ratio hot/cold row", hot.htc / cold.htc, "x",
                     "~8x");
  bench::result_line("Wall superheat ratio hot/cold row",
                     superheat_hot / superheat_cold, "x", "~2x");
  // Single-phase water reference: h is flux-independent, so the
  // superheat ratio equals the flux ratio.
  bench::result_line("Water-cooling superheat ratio (same geometry)",
                     hot.heat_flux / cold.heat_flux, "x", "15x");
  bench::result_line("Outlet vapor quality", res.outlet_quality, "",
                     "(dry-out avoided)");
  std::cout << "  Dry-out: " << (res.dryout ? "YES (!)" : "no") << '\n';
  return 0;
}
