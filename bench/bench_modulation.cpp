// Regenerates the Section II-C heat-transfer-structure modulation
// result: narrowing channels only where the junction limit would be
// exceeded "reports pressure drop and pumping power improvements by a
// factor of 2 and 5" vs uniformly narrow channels.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/modulation.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::microchannel;

  bench::banner(
      "MODULATION - hot-spot-aware channel-width modulation",
      "pressure drop improved ~2x at equal flow; pumping power improved "
      "~5x at equal peak temperature (Section II-C)");

  const Coolant fluid = water(celsius_to_kelvin(27.0));
  const double k_si = 130.0;
  const double height = um(100.0);
  const double pitch = um(150.0);
  const double w_min = um(30.0);
  const double w_max = um(50.0);  // Table I width = TSV-spacing limit
  const double t_limit = celsius_to_kelvin(85.0);
  const double t_in = celsius_to_kelvin(27.0);

  // 10 mm channel in 20 segments; a 2 mm hot spot (250 W/cm2) at 60-80%
  // of the length, 40 W/cm2 background.
  const int n = 20;
  std::vector<double> seg_len(n, mm(10.0) / n);
  std::vector<double> q(n, w_per_cm2(40.0));
  for (int i = 12; i < 16; ++i) q[i] = w_per_cm2(250.0);

  // Per-channel flow at the Table I maximum (66 channels per cm).
  const double q_channel = ml_per_min(32.3) / 66.0;

  // Baseline: uniformly narrow channels sized for the hot spot.
  ModulatedChannel uniform_narrow{seg_len, std::vector<double>(n, w_min),
                                  height};
  const auto base = evaluate_modulated_channel(uniform_narrow, q, pitch,
                                               q_channel, t_in, fluid, k_si);

  // Modulated: wide everywhere, narrowed only under the hot spot.
  const ModulatedChannel modulated =
      design_width_profile(seg_len, q, height, pitch, w_min, w_max,
                           q_channel, t_in, t_limit, fluid, k_si);
  const auto mod = evaluate_modulated_channel(modulated, q, pitch, q_channel,
                                              t_in, fluid, k_si);

  TextTable t;
  t.set_header({"Design", "dP [kPa]", "Pump power/channel [mW]",
                "Peak wall T [C]"});
  t.add_row({"uniform narrow (" + fmt(w_min * 1e6, 0) + " um)",
             fmt(base.pressure_drop / 1e3, 2),
             fmt(base.pumping_power * 1e3, 3),
             fmt(kelvin_to_celsius(base.peak_wall_temperature), 1)});
  t.add_row({"width-modulated", fmt(mod.pressure_drop / 1e3, 2),
             fmt(mod.pumping_power * 1e3, 3),
             fmt(kelvin_to_celsius(mod.peak_wall_temperature), 1)});
  std::cout << t << '\n';

  bench::result_line("Pressure-drop improvement at equal flow",
                     base.pressure_drop / mod.pressure_drop, "x", "~2x");

  // Equal-peak-temperature comparison: the modulated design also needs
  // less flow to hold the same limit, compounding into pumping power.
  const double q_base_min = min_flow_for_limit(
      uniform_narrow, q, pitch, t_in, t_limit, fluid, k_si,
      q_channel / 20.0, q_channel);
  const double q_mod_min =
      min_flow_for_limit(modulated, q, pitch, t_in, t_limit, fluid, k_si,
                         q_channel / 20.0, q_channel);
  const auto base_min = evaluate_modulated_channel(
      uniform_narrow, q, pitch, q_base_min, t_in, fluid, k_si);
  const auto mod_min = evaluate_modulated_channel(modulated, q, pitch,
                                                  q_mod_min, t_in, fluid,
                                                  k_si);
  bench::result_line("Pumping-power improvement at equal peak temperature",
                     base_min.pumping_power / mod_min.pumping_power, "x",
                     "~5x");
  bench::result_line("Flow needed, uniform narrow",
                     to_ml_per_min(q_base_min) * 66.0, "ml/min (66 ch)");
  bench::result_line("Flow needed, modulated",
                     to_ml_per_min(q_mod_min) * 66.0, "ml/min (66 ch)");

  std::cout << "\nWidth profile along the channel [um]:\n  ";
  for (int i = 0; i < n; ++i) {
    std::cout << fmt(modulated.segment_widths[i] * 1e6, 0)
              << (i + 1 < n ? " " : "\n");
  }
  return 0;
}
