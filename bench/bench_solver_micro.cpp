// Micro-benchmarks of the sparse kernels underlying the RC thermal
// solver: SpMV, ILU(0) refactorization, preconditioned BiCGSTAB and
// banded LU, swept over grid sizes (the matrices are real RC systems
// assembled from the 2-tier liquid-cooled stack).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "arch/mpsoc.hpp"
#include "microchannel/pump.hpp"
#include "sparse/banded_lu.hpp"
#include "sparse/iterative.hpp"
#include "sparse/preconditioner.hpp"

namespace {

using namespace tac3d;

/// RC matrix of a 2-tier liquid-cooled stack at grid n x n.
sparse::CsrMatrix rc_matrix(int n) {
  arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{n, n},
      arch::NiagaraConfig::paper()});
  soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
  // Backward-Euler system: G + C/dt.
  sparse::CsrMatrix a = soc.model().conductance();
  const auto c = soc.model().capacitance();
  for (std::int32_t i = 0; i < a.rows(); ++i) {
    a.coeff_ref(i, i) += c[i] / 0.1;
  }
  return a;
}

void BM_SpMV(benchmark::State& state) {
  const auto a = rc_matrix(static_cast<int>(state.range(0)));
  std::vector<double> x(a.cols(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMV)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_Ilu0Refactor(benchmark::State& state) {
  const auto a = rc_matrix(static_cast<int>(state.range(0)));
  sparse::Ilu0Preconditioner precond(a);
  for (auto _ : state) {
    precond.refactor(a);
  }
}
BENCHMARK(BM_Ilu0Refactor)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_BicgstabSolve(benchmark::State& state) {
  const auto a = rc_matrix(static_cast<int>(state.range(0)));
  sparse::Ilu0Preconditioner precond(a);
  std::vector<double> b(a.rows(), 1.0);
  for (auto _ : state) {
    std::vector<double> x(a.rows(), 300.0);
    const auto res = sparse::bicgstab(a, b, x, precond, {1e-10, 2000});
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_BicgstabSolve)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_BandedLuFactor(benchmark::State& state) {
  const auto a = rc_matrix(static_cast<int>(state.range(0)));
  sparse::BandedLu lu(a);
  for (auto _ : state) {
    lu.factor(a);
  }
}
BENCHMARK(BM_BandedLuFactor)->Arg(8)->Arg(16)->Arg(24);

void BM_BandedLuSolve(benchmark::State& state) {
  const auto a = rc_matrix(static_cast<int>(state.range(0)));
  sparse::BandedLu lu(a);
  std::vector<double> b(a.rows(), 1.0), x(a.rows());
  for (auto _ : state) {
    lu.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_BandedLuSolve)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
