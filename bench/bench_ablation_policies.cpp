// Policy ablation on the liquid-cooled 2-tier stack: what does each
// ingredient of LC_FUZZY buy? Compares max-flow (LC_LB), temperature-
// triggered DVFS with max flow (LC_TDVFS_LB, not in the paper's final
// set), and the fuzzy flow+DVFS controller, on the web workload — a
// three-scenario sweep through the parallel runner.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "ABLATION - run-time policy ingredients (liquid-cooled 2-tier)",
      "why joint flow+DVFS control: 'the reason LC_FUZZY outperforms all "
      "other techniques ... is the joint control of flow rate and DVFS'");

  const auto scenarios =
      sim::ScenarioMatrix()
          .tiers({2})
          .policies({sim::PolicyKind::kLcLb, sim::PolicyKind::kLcTdvfsLb,
                     sim::PolicyKind::kLcFuzzy})
          .workloads({power::WorkloadKind::kWebServer})
          .trace_seconds(180)
          .build();
  const auto report = sim::run_sweep(scenarios);
  for (const auto& err : report.errors()) std::cerr << err << '\n';

  TextTable t;
  t.set_header({"Policy", "Peak T [C]", "Hot spots", "Chip E [J]",
                "Pump E [J]", "System E [J]", "Perf loss"});
  for (const auto& r : report.results()) {
    if (!r.ok()) continue;
    const auto& m = r.metrics;
    t.add_row({sim::policy_label(r.scenario.policy),
               fmt(kelvin_to_celsius(m.peak_temp), 1),
               fmt_pct(m.hotspot_frac_any()), fmt(m.chip_energy, 0),
               fmt(m.pump_energy, 0), fmt(m.system_energy(), 0),
               fmt_pct(m.perf_degradation(), 3)});
  }
  std::cout << t << '\n';
  std::cout
      << "LC_TDVFS_LB never throttles (liquid cooling keeps the stack far\n"
         "below the DVFS trip point) so it cannot save anything; only the\n"
         "fuzzy controller converts the thermal margin into pump and DVFS\n"
         "energy savings, which is the paper's core argument for joint\n"
         "mechanical-electrical control.\n\n";
  bench::sweep_footer(report.size(), report.jobs_used(),
                      report.wall_seconds());
  return report.all_ok() ? 0 : 1;
}
