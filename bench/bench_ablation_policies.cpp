// Policy ablation on the liquid-cooled 2-tier stack: what does each
// ingredient of LC_FUZZY buy? Compares max-flow (LC_LB), temperature-
// triggered DVFS with max flow (LC_TDVFS_LB, not in the paper's final
// set), and the fuzzy flow+DVFS controller, on the web workload.
#include <iostream>
#include <memory>

#include "arch/mpsoc.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "control/policy.hpp"
#include "power/workloads.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "ABLATION - run-time policy ingredients (liquid-cooled 2-tier)",
      "why joint flow+DVFS control: 'the reason LC_FUZZY outperforms all "
      "other techniques ... is the joint control of flow rate and DVFS'");

  const auto pump = microchannel::PumpModel::table1(16);
  const auto trace = power::generate_workload(
      power::WorkloadKind::kWebServer, 32, 180, 1);

  struct Row {
    std::string name;
    std::unique_ptr<control::ThermalPolicy> policy;
  };

  TextTable t;
  t.set_header({"Policy", "Peak T [C]", "Hot spots", "Chip E [J]",
                "Pump E [J]", "System E [J]", "Perf loss"});

  for (int variant = 0; variant < 3; ++variant) {
    arch::Mpsoc3D soc(arch::Mpsoc3D::Options{
        2, arch::CoolingKind::kLiquidCooled, thermal::GridOptions{16, 16},
        arch::NiagaraConfig::paper()});
    std::unique_ptr<control::ThermalPolicy> policy;
    switch (variant) {
      case 0:
        policy = std::make_unique<control::MaxPerformancePolicy>(
            8, soc.chip().vf, pump.levels() - 1);
        break;
      case 1:
        policy = std::make_unique<control::TemperatureTriggeredDvfsPolicy>(
            8, soc.chip().vf, celsius_to_kelvin(85.0),
            celsius_to_kelvin(82.0), pump.levels() - 1);
        break;
      default:
        policy = std::make_unique<control::FuzzyFlowDvfsPolicy>(
            8, soc.chip().vf, pump.levels(), celsius_to_kelvin(85.0));
    }
    sim::SimulationConfig cfg;
    cfg.pump = pump;
    const auto m = sim::simulate(soc, trace, *policy, cfg);
    t.add_row({policy->name(), fmt(kelvin_to_celsius(m.peak_temp), 1),
               fmt_pct(m.hotspot_frac_any()), fmt(m.chip_energy, 0),
               fmt(m.pump_energy, 0), fmt(m.system_energy(), 0),
               fmt_pct(m.perf_degradation(), 3)});
  }
  std::cout << t << '\n';
  std::cout
      << "LC_TDVFS_LB never throttles (liquid cooling keeps the stack far\n"
         "below the DVFS trip point) so it cannot save anything; only the\n"
         "fuzzy controller converts the thermal margin into pump and DVFS\n"
         "energy savings, which is the paper's core argument for joint\n"
         "mechanical-electrical control.\n";
  return 0;
}
