// Regenerates the Section II-C pin-fin exploration: "circular in-line
// pins result in low pressure drop at acceptable convective heat
// transfer, compared to staggered arrangement ... low pressure drop
// structures should be targeted for 3D MPSoCs."
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/pinfin.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::microchannel;

  bench::banner(
      "PIN FINS - arrangement and shape exploration",
      "circular in-line pins: low pressure drop at acceptable convective "
      "heat transfer vs staggered (Section II-C)");

  const Coolant fluid = water(celsius_to_kelvin(27.0));
  PinFinArray geom;
  geom.pin_diameter = um(50.0);
  geom.transverse_pitch = um(150.0);
  geom.longitudinal_pitch = um(150.0);
  geom.height = um(100.0);
  geom.footprint_width = mm(10.0);
  geom.footprint_length = mm(10.0);

  const double q_total = ml_per_min(32.3);

  TextTable t;
  t.set_header({"Shape", "Arrangement", "Re_max", "dP [kPa]",
                "HTC [kW/m2K]", "G_thermal [W/K]", "Pump power [mW]"});
  for (const auto shape :
       {PinShape::kCircular, PinShape::kSquare, PinShape::kDrop}) {
    for (const auto arr :
         {PinArrangement::kInline, PinArrangement::kStaggered}) {
      geom.shape = shape;
      geom.arrangement = arr;
      const auto perf = evaluate_pin_fin(geom, q_total, fluid, 130.0);
      const char* shape_name = shape == PinShape::kCircular ? "circular"
                               : shape == PinShape::kSquare ? "square"
                                                            : "drop";
      t.add_row({shape_name,
                 arr == PinArrangement::kInline ? "in-line" : "staggered",
                 fmt(perf.reynolds_max, 1),
                 fmt(perf.pressure_drop / 1e3, 2), fmt(perf.htc / 1e3, 2),
                 fmt(perf.thermal_conductance, 1),
                 fmt(perf.pumping_power * 1e3, 2)});
    }
  }
  std::cout << t << '\n';

  geom.shape = PinShape::kCircular;
  geom.arrangement = PinArrangement::kInline;
  const auto inline_perf = evaluate_pin_fin(geom, q_total, fluid, 130.0);
  geom.arrangement = PinArrangement::kStaggered;
  const auto stag_perf = evaluate_pin_fin(geom, q_total, fluid, 130.0);

  bench::result_line("Staggered/in-line pressure-drop ratio (circular)",
                     stag_perf.pressure_drop / inline_perf.pressure_drop,
                     "x", ">1 (in-line wins on dP)");
  bench::result_line("In-line/staggered HTC ratio (circular)",
                     inline_perf.htc / stag_perf.htc, "x",
                     "<1 but acceptable");
  return 0;
}
