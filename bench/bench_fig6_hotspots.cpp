// Regenerates Fig. 6: percentage of time hot spots (> 85 C) are observed
// for the seven policy/stack combinations, both averaged across the
// average-case workloads and for the maximum-utilization benchmark,
// reported per-core-average and any-core. Also prints the Section IV-A
// peak temperatures.
//
// The full 7 x (4 average + 1 max-util) matrix is expanded by
// ScenarioMatrix and executed by the parallel sweep runner.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "FIG. 6 - % of time hot spots are observed (threshold 85 C)",
      "TDVFS reduces AC hot spots; liquid cooling removes all hot spots; "
      "peaks: 2-tier AC_LB 87C / AC_TDVFS_LB 85C / LC_LB 56C / LC_FUZZY "
      "68C; 4-tier AC up to 178C");

  const auto scenarios = bench::fig67_scenarios(180);
  const auto report = sim::run_sweep(scenarios);
  for (const auto& err : report.errors()) std::cerr << err << '\n';

  // Aggregate per stack x policy cell: mean over the average-case
  // workloads plus the max-util run, in matrix (paper) order.
  struct Acc {
    double hot_avg_aw = 0.0, hot_any_aw = 0.0, peak_aw = 0.0;
    double hot_avg_max = 0.0, hot_any_max = 0.0, peak_max = 0.0;
  };
  const std::size_t n_avg = power::average_case_workloads().size();
  bench::ConfigCells<Acc> cells;
  for (const auto& r : report.results()) {
    const std::string key = bench::config_key(r.scenario);
    if (!r.ok()) {
      cells.mark_failed(key);
      continue;
    }
    Acc& acc = cells.at(key);
    if (r.scenario.workload == power::WorkloadKind::kMaxUtil) {
      acc.hot_avg_max = r.metrics.hotspot_frac_avg_core();
      acc.hot_any_max = r.metrics.hotspot_frac_any();
      acc.peak_max = r.metrics.peak_temp;
    } else {
      acc.hot_avg_aw += r.metrics.hotspot_frac_avg_core() / n_avg;
      acc.hot_any_aw += r.metrics.hotspot_frac_any() / n_avg;
      acc.peak_aw = std::max(acc.peak_aw, r.metrics.peak_temp);
    }
  }

  TextTable t;
  t.set_header({"Config", "avg(avg util)", "max(avg util)", "avg(max util)",
                "max(max util)", "peakT avg [C]", "peakT max [C]"});
  for (const auto& key : cells.order()) {
    if (cells.failed(key)) {
      t.add_row({key, "ERROR (scenario failed, see stderr)"});
      continue;
    }
    const Acc& acc = cells.at(key);
    t.add_row({key, fmt_pct(acc.hot_avg_aw), fmt_pct(acc.hot_any_aw),
               fmt_pct(acc.hot_avg_max), fmt_pct(acc.hot_any_max),
               fmt(kelvin_to_celsius(acc.peak_aw), 1),
               fmt(kelvin_to_celsius(acc.peak_max), 1)});
  }
  std::cout << t << '\n';
  std::cout
      << "Series: 'avg' = % averaged per core, 'max' = % of time any core\n"
         "is hot; '(avg util)' = mean across web/db/mmedia/mixed traces,\n"
         "'(max util)' = maximum-utilization benchmark.\n\n";
  bench::sweep_footer(report.size(), report.jobs_used(),
                      report.wall_seconds());
  return report.all_ok() ? 0 : 1;
}
