// Regenerates Fig. 6: percentage of time hot spots (> 85 C) are observed
// for the seven policy/stack combinations, both averaged across the
// average-case workloads and for the maximum-utilization benchmark,
// reported per-core-average and any-core. Also prints the Section IV-A
// peak temperatures.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "FIG. 6 - % of time hot spots are observed (threshold 85 C)",
      "TDVFS reduces AC hot spots; liquid cooling removes all hot spots; "
      "peaks: 2-tier AC_LB 87C / AC_TDVFS_LB 85C / LC_LB 56C / LC_FUZZY "
      "68C; 4-tier AC up to 178C");

  struct Combo {
    int tiers;
    sim::PolicyKind policy;
  };
  const std::vector<Combo> combos = {
      {2, sim::PolicyKind::kAcLb},   {2, sim::PolicyKind::kAcTdvfsLb},
      {2, sim::PolicyKind::kLcLb},   {2, sim::PolicyKind::kLcFuzzy},
      {4, sim::PolicyKind::kAcLb},   {4, sim::PolicyKind::kLcLb},
      {4, sim::PolicyKind::kLcFuzzy}};

  TextTable t;
  t.set_header({"Config", "avg(avg util)", "max(avg util)", "avg(max util)",
                "max(max util)", "peakT avg [C]", "peakT max [C]"});

  for (const Combo& c : combos) {
    double hot_avg_aw = 0.0, hot_any_aw = 0.0, peak_aw = 0.0;
    const auto workloads = power::average_case_workloads();
    for (const auto w : workloads) {
      sim::ExperimentSpec spec;
      spec.tiers = c.tiers;
      spec.policy = c.policy;
      spec.workload = w;
      spec.trace_seconds = 180;
      const auto m = sim::run_experiment(spec);
      hot_avg_aw += m.hotspot_frac_avg_core() / workloads.size();
      hot_any_aw += m.hotspot_frac_any() / workloads.size();
      peak_aw = std::max(peak_aw, m.peak_temp);
    }
    sim::ExperimentSpec spec;
    spec.tiers = c.tiers;
    spec.policy = c.policy;
    spec.workload = power::WorkloadKind::kMaxUtil;
    spec.trace_seconds = 180;
    const auto mm = sim::run_experiment(spec);

    t.add_row({std::to_string(c.tiers) + "-tier " +
                   sim::policy_label(c.policy),
               fmt_pct(hot_avg_aw), fmt_pct(hot_any_aw),
               fmt_pct(mm.hotspot_frac_avg_core()),
               fmt_pct(mm.hotspot_frac_any()),
               fmt(kelvin_to_celsius(peak_aw), 1),
               fmt(kelvin_to_celsius(mm.peak_temp), 1)});
  }
  std::cout << t << '\n';
  std::cout
      << "Series: 'avg' = % averaged per core, 'max' = % of time any core\n"
         "is hot; '(avg util)' = mean across web/db/mmedia/mixed traces,\n"
         "'(max util)' = maximum-utilization benchmark.\n";
  return 0;
}
