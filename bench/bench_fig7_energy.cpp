// Regenerates Fig. 7: normalized energy consumption (system and pump)
// and performance degradation for the seven policy/stack combinations,
// normalized to 2-tier AC_LB, averaged across the average-case
// workloads. Also prints the Section IV-A energy-saving claims
// (LC_FUZZY vs LC_LB).
//
// The full 7 x (4 average + 1 max-util) matrix is expanded by
// ScenarioMatrix and executed by the parallel sweep runner.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "FIG. 7 - normalized energy consumption and performance degradation",
      "LC_FUZZY cuts 2-/4-tier system energy 14%/18% and cooling energy "
      "50%/52% vs LC_LB; up to 67% cooling / 30% system savings; "
      "LC performance loss < 0.01%");

  const auto scenarios = bench::fig67_scenarios(180);
  const auto report = sim::run_sweep(scenarios);
  for (const auto& err : report.errors()) std::cerr << err << '\n';

  struct Acc {
    double chip = 0.0, pump = 0.0, perf_max = 0.0, perf_avg = 0.0;
  };
  const std::size_t n_avg = power::average_case_workloads().size();
  bench::ConfigCells<Acc> results;
  for (const auto& r : report.results()) {
    const std::string key = bench::config_key(r.scenario);
    if (!r.ok()) {
      results.mark_failed(key);
      continue;
    }
    Acc& acc = results.at(key);
    if (r.scenario.workload == power::WorkloadKind::kMaxUtil) {
      acc.perf_max = r.metrics.perf_degradation();
    } else {
      acc.chip += r.metrics.chip_energy / n_avg;
      acc.pump += r.metrics.pump_energy / n_avg;
      acc.perf_avg += r.metrics.perf_degradation() / n_avg;
    }
  }

  // Normalize to 2-tier AC_LB (no pump energy there); fall back to 1 so
  // a failed baseline doesn't turn the whole table into inf/nan.
  const double baseline = results.at("2-tier AC_LB").chip;
  const double norm =
      !results.failed("2-tier AC_LB") && baseline > 0.0 ? baseline : 1.0;
  TextTable t;
  t.set_header({"Config", "system E (norm)", "pump E (norm)",
                "perf loss (avg)", "perf loss (max util)"});
  for (const auto& key : results.order()) {
    if (results.failed(key)) {
      t.add_row({key, "ERROR (scenario failed, see stderr)"});
      continue;
    }
    const Acc& a = results.at(key);
    t.add_row({key, fmt((a.chip + a.pump) / norm, 3), fmt(a.pump / norm, 3),
               fmt_pct(a.perf_avg, 2), fmt_pct(a.perf_max, 2)});
  }
  std::cout << t << '\n';

  auto saving = [](double base, double val) {
    return 100.0 * (base - val) / base;
  };
  for (int tiers : {2, 4}) {
    const std::string lb_key = std::to_string(tiers) + "-tier LC_LB";
    const std::string fz_key = std::to_string(tiers) + "-tier LC_FUZZY";
    if (results.failed(lb_key) || results.failed(fz_key)) {
      std::cout << tiers
                << "-tier LC_FUZZY vs LC_LB: n/a (scenario failed)\n";
      continue;
    }
    const Acc& lb = results.at(lb_key);
    const Acc& fz = results.at(fz_key);
    std::cout << tiers << "-tier LC_FUZZY vs LC_LB: system energy -"
              << fmt(saving(lb.chip + lb.pump, fz.chip + fz.pump), 1)
              << "% [paper: " << (tiers == 2 ? 14 : 18)
              << "%], cooling energy -" << fmt(saving(lb.pump, fz.pump), 1)
              << "% [paper: " << (tiers == 2 ? 50 : 52) << "%]\n";
  }
  std::cout << '\n';
  bench::sweep_footer(report.size(), report.jobs_used(),
                      report.wall_seconds());
  return report.all_ok() ? 0 : 1;
}
