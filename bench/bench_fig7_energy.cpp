// Regenerates Fig. 7: normalized energy consumption (system and pump)
// and performance degradation for the seven policy/stack combinations,
// normalized to 2-tier AC_LB, averaged across the average-case
// workloads. Also prints the Section IV-A energy-saving claims
// (LC_FUZZY vs LC_LB).
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace tac3d;
  bench::banner(
      "FIG. 7 - normalized energy consumption and performance degradation",
      "LC_FUZZY cuts 2-/4-tier system energy 14%/18% and cooling energy "
      "50%/52% vs LC_LB; up to 67% cooling / 30% system savings; "
      "LC performance loss < 0.01%");

  struct Combo {
    int tiers;
    sim::PolicyKind policy;
  };
  const std::vector<Combo> combos = {
      {2, sim::PolicyKind::kAcLb},   {2, sim::PolicyKind::kAcTdvfsLb},
      {2, sim::PolicyKind::kLcLb},   {2, sim::PolicyKind::kLcFuzzy},
      {4, sim::PolicyKind::kAcLb},   {4, sim::PolicyKind::kLcLb},
      {4, sim::PolicyKind::kLcFuzzy}};

  struct Acc {
    double chip = 0.0, pump = 0.0, perf_max = 0.0, perf_avg = 0.0;
  };
  std::map<std::string, Acc> results;
  std::vector<std::string> order;

  const auto workloads = power::average_case_workloads();
  for (const Combo& c : combos) {
    Acc acc;
    for (const auto w : workloads) {
      sim::ExperimentSpec spec;
      spec.tiers = c.tiers;
      spec.policy = c.policy;
      spec.workload = w;
      spec.trace_seconds = 180;
      const auto m = sim::run_experiment(spec);
      acc.chip += m.chip_energy / workloads.size();
      acc.pump += m.pump_energy / workloads.size();
      acc.perf_avg += m.perf_degradation() / workloads.size();
    }
    sim::ExperimentSpec spec;
    spec.tiers = c.tiers;
    spec.policy = c.policy;
    spec.workload = power::WorkloadKind::kMaxUtil;
    spec.trace_seconds = 180;
    acc.perf_max = sim::run_experiment(spec).perf_degradation();

    const std::string key =
        std::to_string(c.tiers) + "-tier " + sim::policy_label(c.policy);
    results[key] = acc;
    order.push_back(key);
  }

  const double norm = results["2-tier AC_LB"].chip;  // no pump in AC_LB
  TextTable t;
  t.set_header({"Config", "system E (norm)", "pump E (norm)",
                "perf loss (avg)", "perf loss (max util)"});
  for (const auto& key : order) {
    const Acc& a = results[key];
    t.add_row({key, fmt((a.chip + a.pump) / norm, 3), fmt(a.pump / norm, 3),
               fmt_pct(a.perf_avg, 2), fmt_pct(a.perf_max, 2)});
  }
  std::cout << t << '\n';

  auto saving = [](double base, double val) {
    return 100.0 * (base - val) / base;
  };
  for (int tiers : {2, 4}) {
    const Acc& lb = results[std::to_string(tiers) + "-tier LC_LB"];
    const Acc& fz = results[std::to_string(tiers) + "-tier LC_FUZZY"];
    std::cout << tiers << "-tier LC_FUZZY vs LC_LB: system energy -"
              << fmt(saving(lb.chip + lb.pump, fz.chip + fz.pump), 1)
              << "% [paper: " << (tiers == 2 ? 14 : 18)
              << "%], cooling energy -" << fmt(saving(lb.pump, fz.pump), 1)
              << "% [paper: " << (tiers == 2 ? 50 : 52) << "%]\n";
  }
  return 0;
}
