// Regenerates the Section II-D modeling claim in structure: the compact
// (homogenized "porous-media") RC model is orders of magnitude faster
// than a detailed solver while staying within a few percent on maximum
// temperature. The paper compared 3D-ICE against commercial CFD (975x
// speed-up, <= 3.4% max temperature error); our comparator is the
// in-repo detailed per-channel model on a refined grid (see DESIGN.md
// "Substitutions").
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/mpsoc.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/transient.hpp"

namespace {

using namespace tac3d;

arch::Mpsoc3D make_soc(const thermal::GridOptions& grid) {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, grid,
      arch::NiagaraConfig::paper()});
}

void load_max_power(arch::Mpsoc3D& soc) {
  soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
}

thermal::GridOptions compact_grid() { return thermal::GridOptions{16, 16}; }

thermal::GridOptions detailed_grid() {
  thermal::GridOptions g;
  g.rows = 48;
  g.discrete_channels = true;
  g.x_refine = 1;
  g.z_refine = 2;
  return g;
}

void BM_CompactSteadyState(benchmark::State& state) {
  auto soc = make_soc(compact_grid());
  load_max_power(soc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.model().steady_state());
  }
}
BENCHMARK(BM_CompactSteadyState)->Unit(benchmark::kMillisecond);

void BM_DetailedSteadyState(benchmark::State& state) {
  auto soc = make_soc(detailed_grid());
  load_max_power(soc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.model().steady_state());
  }
}
BENCHMARK(BM_DetailedSteadyState)->Unit(benchmark::kMillisecond);

void BM_CompactTransientStep(benchmark::State& state) {
  auto soc = make_soc(compact_grid());
  load_max_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.1);
  sim.initialize_steady();
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_CompactTransientStep)->Unit(benchmark::kMillisecond);

void BM_DetailedTransientStep(benchmark::State& state) {
  auto soc = make_soc(detailed_grid());
  load_max_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.1);
  sim.initialize_steady();
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_DetailedTransientStep)->Unit(benchmark::kMillisecond);

void accuracy_report() {
  bench::banner(
      "SOLVER - compact vs detailed model: speed and accuracy",
      "3D-ICE-style compact modeling: large speed-up (paper: up to 975x "
      "vs CFD) at small error (paper: max temperature error 3.4%)");

  auto compact = make_soc(compact_grid());
  auto detailed = make_soc(detailed_grid());
  load_max_power(compact);
  load_max_power(detailed);

  bench::Stopwatch watch;
  const auto temps_c = compact.model().steady_state();
  const double ms_c = watch.millis();
  watch.reset();
  const auto temps_d = detailed.model().steady_state();
  const double ms_d = watch.millis();

  // Compare per-element maximum temperatures (the quantity policies use).
  TextTable t;
  t.set_header({"Element", "Compact [C]", "Detailed [C]", "Error [K]"});
  double max_err = 0.0, max_rise = 0.0;
  const double t_ref = compact.model().grid().spec().coolant_inlet;
  for (int e = 0; e < compact.model().grid().element_count(); ++e) {
    const auto& name = compact.model().grid().element(e).name;
    const double tc = compact.model().element_max(temps_c, e);
    const int ed = detailed.model().grid().element_id(name);
    const double td = detailed.model().element_max(temps_d, ed);
    max_err = std::max(max_err, std::abs(tc - td));
    max_rise = std::max(max_rise, td - t_ref);
    if (e < 6 || std::abs(tc - td) == max_err) {
      t.add_row({name, fmt(kelvin_to_celsius(tc), 2),
                 fmt(kelvin_to_celsius(td), 2), fmt(tc - td, 2)});
    }
  }
  std::cout << t << '\n';
  bench::result_line("Compact nodes",
                     compact.model().node_count(), "");
  bench::result_line("Detailed nodes",
                     detailed.model().node_count(), "");
  bench::result_line("Steady-state speed-up (detailed/compact)",
                     ms_d / ms_c, "x", "paper: up to 975x vs CFD");
  bench::result_line("Max element temperature error",
                     100.0 * max_err / max_rise, "% of rise",
                     "paper: <= 3.4%");
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  accuracy_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
