// Regenerates the Section II-D modeling claim in structure: the compact
// (homogenized "porous-media") RC model is orders of magnitude faster
// than a detailed solver while staying within a few percent on maximum
// temperature. The paper compared 3D-ICE against commercial CFD (975x
// speed-up, <= 3.4% max temperature error); our comparator is the
// in-repo detailed per-channel model on a refined grid (see DESIGN.md
// "Substitutions").
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "arch/mpsoc.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/pump.hpp"
#include "thermal/transient.hpp"

namespace {

using namespace tac3d;

arch::Mpsoc3D make_soc(const thermal::GridOptions& grid) {
  return arch::Mpsoc3D(arch::Mpsoc3D::Options{
      2, arch::CoolingKind::kLiquidCooled, grid,
      arch::NiagaraConfig::paper()});
}

void load_max_power(arch::Mpsoc3D& soc) {
  soc.model().set_all_flows(microchannel::PumpModel::table1().q_max());
  std::vector<arch::CoreState> cores(soc.n_cores(),
                                     {1.0, soc.chip().vf.max_level()});
  soc.model().set_element_powers(soc.element_powers(cores, {}));
}

thermal::GridOptions compact_grid() { return thermal::GridOptions{16, 16}; }

thermal::GridOptions detailed_grid() {
  thermal::GridOptions g;
  g.rows = 48;
  g.discrete_channels = true;
  g.x_refine = 1;
  g.z_refine = 2;
  return g;
}

void BM_CompactSteadyState(benchmark::State& state) {
  auto soc = make_soc(compact_grid());
  load_max_power(soc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.model().steady_state());
  }
}
BENCHMARK(BM_CompactSteadyState)->Unit(benchmark::kMillisecond);

void BM_DetailedSteadyState(benchmark::State& state) {
  auto soc = make_soc(detailed_grid());
  load_max_power(soc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc.model().steady_state());
  }
}
BENCHMARK(BM_DetailedSteadyState)->Unit(benchmark::kMillisecond);

void BM_CompactTransientStep(benchmark::State& state) {
  auto soc = make_soc(compact_grid());
  load_max_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.1);
  sim.initialize_steady();
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_CompactTransientStep)->Unit(benchmark::kMillisecond);

void BM_DetailedTransientStep(benchmark::State& state) {
  auto soc = make_soc(detailed_grid());
  load_max_power(soc);
  thermal::TransientSolver sim(soc.model(), 0.1);
  sim.initialize_steady();
  for (auto _ : state) {
    sim.step();
  }
}
BENCHMARK(BM_DetailedTransientStep)->Unit(benchmark::kMillisecond);

/// Transient-stepping throughput per solver kind, written to
/// BENCH_solver.json so the perf trajectory is tracked across PRs.
/// Measures both regimes of the closed loop: fixed flow (matrix
/// constant, warm-started solves) and flow-modulated (the fuzzy-pump
/// regime: a flow change every step, cycling all pump levels). The
/// modulated regime runs twice — through the ThermalOperator's lazy
/// refresh policy plus the flow-transition warm-start cache (the
/// default), and with RefreshPolicy::eager() and the predictor disabled
/// (the pre-operator behavior: full rebuild + refactor every change) —
/// so the gap the operator split closes stays visible. Both loops are
/// warmed up before timing, so the rates are sustained-regime numbers.
void throughput_report() {
  bench::banner(
      "SOLVER - transient stepping throughput (BENCH_solver.json)",
      "sweep scalability: thousands of thermal evaluations per "
      "design-space exploration run");

  auto pump = microchannel::PumpModel::table1();
  bench::JsonObject solvers_json;
  TextTable t;
  t.set_header({"Solver", "steps/s (fixed)", "steps/s (modulated)",
                "steps/s (mod, eager)", "iters/step", "refac full/part",
                "init [ms]"});
  TextTable ap_table;
  ap_table.set_header({"Aperiodic flow (Krylov)", "steps/s",
                       "iters/transition (pred)", "iters/transition (no pred)",
                       "iter cut", "fluid-jump hits/transitions"});

  double nodes = 0.0;
  double dirty_fraction = 0.0;
  for (const auto kind :
       {sparse::SolverKind::kBandedLu, sparse::SolverKind::kBicgstabIlu0,
        sparse::SolverKind::kBicgstabJacobi}) {
    auto soc = make_soc(compact_grid());
    load_max_power(soc);
    nodes = soc.model().node_count();

    bench::Stopwatch watch;
    thermal::TransientSolver sim(soc.model(), 0.1, kind);
    sim.initialize_steady();
    const double init_ms = watch.millis();

    for (int i = 0; i < 50; ++i) sim.step();  // warm-up
    const int fixed_steps = kind == sparse::SolverKind::kBandedLu ? 500 : 4000;
    watch.reset();
    for (int i = 0; i < fixed_steps; ++i) sim.step();
    const double fixed_rate = fixed_steps / watch.seconds();

    const int mod_steps = 400;
    auto modulated_loop = [&](thermal::TransientSolver& s, int steps) {
      for (int i = 0; i < steps; ++i) {
        soc.model().set_all_flows(pump.flow_per_cavity(i % pump.levels()));
        s.step();
      }
    };
    modulated_loop(sim, 4 * pump.levels());  // reach the modulation orbit
    const std::uint64_t iters0 = sim.solver_stats().iterations;
    const std::uint64_t full0 = sim.solver_stats().refactors;
    const std::uint64_t part0 = sim.solver_stats().partial_refactors;
    const std::uint64_t cache0 = sim.solver_stats().factor_cache_hits;
    watch.reset();
    modulated_loop(sim, mod_steps);
    const double mod_rate = mod_steps / watch.seconds();
    const double mod_iters =
        static_cast<double>(sim.solver_stats().iterations - iters0) /
        mod_steps;
    // Kept separate: a full refactor is the expensive rebuild the lazy
    // policy avoids; a partial refresh (Jacobi dirty rows, banded tail)
    // is the cheap exact one it embraces.
    const std::uint64_t mod_full = sim.solver_stats().refactors - full0;
    const std::uint64_t mod_partial =
        sim.solver_stats().partial_refactors - part0;
    // Lever column of the banded factor-slot cache: modulated flow
    // changes served by switching to a cached factorization (bitwise
    // equal to refactoring) instead of eliminating anything.
    const std::uint64_t mod_cache_hits =
        sim.solver_stats().factor_cache_hits - cache0;
    dirty_fraction = sim.system_operator().last_dirty_fraction();

    // Eager reference: refactor on every flow change, no predictor.
    thermal::TransientSolver::Options eager_opts;
    eager_opts.kind = kind;
    eager_opts.refresh = sparse::RefreshPolicy::eager();
    eager_opts.warm_start_slots = 0;
    thermal::TransientSolver eager(soc.model(), 0.1, eager_opts);
    eager.set_state(std::vector<double>(sim.temperatures().begin(),
                                        sim.temperatures().end()));
    modulated_loop(eager, pump.levels());
    watch.reset();
    modulated_loop(eager, mod_steps);
    const double eager_rate = mod_steps / watch.seconds();

    const char* name = kind == sparse::SolverKind::kBandedLu
                           ? "banded-lu(rcm)"
                           : kind == sparse::SolverKind::kBicgstabIlu0
                                 ? "bicgstab+ilu0"
                                 : "bicgstab+jacobi";

    // Aperiodic-flow leg (Krylov kinds only): each transition drives
    // every cavity to a fresh per-cavity flow from an irrational-
    // rotation sequence, so no two flow states repeat and no two are
    // collinear across cavities. That defeats both the exact transition
    // cache and the collinearity-gated interpolation — the physics-based
    // fluid-jump predictor (Gauss-Seidel relaxation of the fluid rows)
    // is the only warm-start lever left. Between transitions the loop
    // settles a few constant-flow steps (the closed loop holds flow
    // between policy decisions too), so the Krylov cost measured at each
    // transition step isolates the flow jump itself. Run twice,
    // predictor on vs off: the first-transition iteration cut is the
    // lever's gated bench column.
    double ap_rate = 0.0, ap_iters = 0.0, ap_iters_nopred = 0.0;
    std::uint64_t ap_jumps = 0;
    const int ap_transitions = 60, ap_settle = 6, ap_warm = 10;
    if (kind != sparse::SolverKind::kBandedLu) {
      const int n_cav = soc.model().n_cavities();
      auto set_aperiodic_flows = [&](int k) {
        for (int cav = 0; cav < n_cav; ++cav) {
          // Distinct irrational stride per cavity; fract() of the
          // rotation never revisits a value and never tracks another
          // cavity proportionally.
          const double stride = 0.618033988749895 + 0.089 * cav;
          const double u = std::fmod(stride * k + 0.1 * (cav + 1), 1.0);
          soc.model().set_cavity_flow(cav, (0.45 + 0.35 * u) * pump.q_max());
        }
      };
      // Returns mean Krylov iterations spent on the transition step.
      auto aperiodic_run = [&](thermal::TransientSolver& s, int from,
                               int transitions) {
        std::uint64_t trans_iters = 0;
        for (int k = 0; k < transitions; ++k) {
          set_aperiodic_flows(from + k);
          const std::uint64_t i0 = s.solver_stats().iterations;
          s.step();
          trans_iters += s.solver_stats().iterations - i0;
          for (int j = 0; j < ap_settle; ++j) s.step();
        }
        return static_cast<double>(trans_iters) / transitions;
      };
      const std::vector<double> start(sim.temperatures().begin(),
                                      sim.temperatures().end());

      thermal::TransientSolver::Options ap_opts;
      ap_opts.kind = kind;
      thermal::TransientSolver ap(soc.model(), 0.1, ap_opts);
      ap.set_state(start);
      aperiodic_run(ap, 0, ap_warm);
      const std::uint64_t ap_j0 = ap.predictor_fluid_jumps();
      watch.reset();
      ap_iters = aperiodic_run(ap, ap_warm, ap_transitions);
      ap_rate = ap_transitions * (1 + ap_settle) / watch.seconds();
      ap_jumps = ap.predictor_fluid_jumps() - ap_j0;

      thermal::TransientSolver::Options nopred_opts = ap_opts;
      nopred_opts.fluid_jump_predictor = false;
      thermal::TransientSolver nopred(soc.model(), 0.1, nopred_opts);
      nopred.set_state(start);
      aperiodic_run(nopred, 0, ap_warm);
      ap_iters_nopred = aperiodic_run(nopred, ap_warm, ap_transitions);
      ap_table.add_row(
          {name, fmt(ap_rate, 0), fmt(ap_iters, 2), fmt(ap_iters_nopred, 2),
           fmt(100.0 * (1.0 - ap_iters / ap_iters_nopred), 1) + "%",
           fmt(static_cast<double>(ap_jumps), 0) + "/" +
               fmt(static_cast<double>(ap_transitions), 0)});
    }

    t.add_row({name, fmt(fixed_rate, 0), fmt(mod_rate, 0),
               fmt(eager_rate, 0), fmt(mod_iters, 2),
               fmt(static_cast<double>(mod_full), 0) + "/" +
                   fmt(static_cast<double>(mod_partial), 0),
               fmt(init_ms, 1)});
    bench::JsonObject s;
    s.set("steps_per_sec_fixed_flow", fixed_rate)
        .set("steps_per_sec_flow_modulated", mod_rate)
        .set("steps_per_sec_flow_modulated_eager", eager_rate)
        .set("modulated_iterations_per_step", mod_iters)
        .set("modulated_full_refactors", static_cast<std::int64_t>(mod_full))
        .set("modulated_partial_refreshes",
             static_cast<std::int64_t>(mod_partial))
        .set("modulated_factor_cache_hits",
             static_cast<std::int64_t>(mod_cache_hits))
        .set("init_steady_ms", init_ms);
    if (kind != sparse::SolverKind::kBandedLu) {
      s.set("aperiodic_steps_per_sec", ap_rate)
          .set("aperiodic_transition_iterations", ap_iters)
          .set("aperiodic_transition_iterations_nopredictor", ap_iters_nopred)
          .set("aperiodic_fluid_jump_hits",
               static_cast<std::int64_t>(ap_jumps));
    }
    solvers_json.set(name, s);
  }
  std::cout << t << '\n';
  bench::result_line("Flow-update dirty fraction (advection nnz / nnz)",
                     dirty_fraction, "");
  std::cout << '\n';
  std::cout << ap_table << '\n';

  bench::JsonObject root;
  root.set("bench", "bench_solver_speed")
      .set("grid", "16x16 compact, 2-tier liquid-cooled")
      .set("nodes", nodes)
      .set("dt_seconds", 0.1)
      .set("modulated_steps", 400)
      .set("flow_update_dirty_fraction", dirty_fraction)
      .set("solvers", solvers_json);
  bench::write_json("BENCH_solver.json", root);
  std::cout << '\n';
}

void accuracy_report() {
  bench::banner(
      "SOLVER - compact vs detailed model: speed and accuracy",
      "3D-ICE-style compact modeling: large speed-up (paper: up to 975x "
      "vs CFD) at small error (paper: max temperature error 3.4%)");

  auto compact = make_soc(compact_grid());
  auto detailed = make_soc(detailed_grid());
  load_max_power(compact);
  load_max_power(detailed);

  bench::Stopwatch watch;
  const auto temps_c = compact.model().steady_state();
  const double ms_c = watch.millis();
  watch.reset();
  const auto temps_d = detailed.model().steady_state();
  const double ms_d = watch.millis();

  // Compare per-element maximum temperatures (the quantity policies use).
  TextTable t;
  t.set_header({"Element", "Compact [C]", "Detailed [C]", "Error [K]"});
  double max_err = 0.0, max_rise = 0.0;
  const double t_ref = compact.model().grid().spec().coolant_inlet;
  for (int e = 0; e < compact.model().grid().element_count(); ++e) {
    const auto& name = compact.model().grid().element(e).name;
    const double tc = compact.model().element_max(temps_c, e);
    const int ed = detailed.model().grid().element_id(name);
    const double td = detailed.model().element_max(temps_d, ed);
    max_err = std::max(max_err, std::abs(tc - td));
    max_rise = std::max(max_rise, td - t_ref);
    if (e < 6 || std::abs(tc - td) == max_err) {
      t.add_row({name, fmt(kelvin_to_celsius(tc), 2),
                 fmt(kelvin_to_celsius(td), 2), fmt(tc - td, 2)});
    }
  }
  std::cout << t << '\n';
  bench::result_line("Compact nodes",
                     compact.model().node_count(), "");
  bench::result_line("Detailed nodes",
                     detailed.model().node_count(), "");
  bench::result_line("Steady-state speed-up (detailed/compact)",
                     ms_d / ms_c, "x", "paper: up to 975x vs CFD");
  bench::result_line("Max element temperature error",
                     100.0 * max_err / max_rise, "% of rise",
                     "paper: <= 3.4%");
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  accuracy_report();
  throughput_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
