// Regenerates Fig. 1 ("Layouts of the 3D multicore systems"): the tier
// floorplans and stack-ups of the 2- and 4-tier UltraSPARC T1 3D MPSoCs.
#include <iostream>

#include "arch/niagara.hpp"
#include "arch/stacks.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace tac3d;
  bench::banner("FIG. 1 - layouts of the 3D multicore systems",
                "cores and L2 caches on separate tiers; micro-channels "
                "between the vertical layers");

  const auto chip = arch::NiagaraConfig::paper();
  for (int tiers : {2, 4}) {
    const auto spec =
        arch::build_stack(chip, tiers, arch::CoolingKind::kLiquidCooled);
    std::cout << "---- " << spec.name << " ----\n";
    std::cout << "Tier size: " << fmt(spec.width * 1e3, 2) << " x "
              << fmt(spec.length * 1e3, 2) << " mm ("
              << fmt(spec.width * spec.length * 1e6, 1) << " mm2)\n\n";

    std::cout << "Stack-up (bottom to top):\n";
    for (const auto& layer : spec.layers) {
      std::cout << "  " << layer.name << "  ("
                << fmt(layer.thickness * 1e3, 3) << " mm, "
                << (layer.kind == thermal::LayerKind::kCavity
                        ? "micro-channel cavity"
                        : layer.material.name)
                << ")";
      if (layer.floorplan_index >= 0) {
        std::cout << "  <- floorplan " << layer.floorplan_index;
      }
      std::cout << '\n';
    }
    std::cout << '\n';

    for (std::size_t f = 0; f < spec.floorplans.size(); ++f) {
      const auto& fp = spec.floorplans[f];
      std::cout << "Floorplan " << f << " (area used "
                << fmt(fp.total_area() * 1e6, 1) << " mm2):\n";
      std::cout << fp.ascii_art(spec.width, spec.length, 44) << '\n';
    }
  }
  return 0;
}
