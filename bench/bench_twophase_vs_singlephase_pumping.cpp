// Regenerates the Section III flow-rate/pumping comparison: "the flow
// rate of the two-phase coolant can be as little as 1/5 to 1/10 that of
// water ... two-phase cooling enjoys about 80-90% less energy
// consumption in the micro-channels."
//
// The comparison uses the silicon test-section geometry of Agostini et
// al. [1][2] (134 parallel channels, 67/92/680 um width/fin/height) that
// Section III cites. Water is sized for a 5 K outlet rise (the
// temperature-uniformity budget single-phase cooling must hold); the
// refrigerant absorbs the same heat as latent heat up to an outlet
// quality of 0.7 (safe margin to dry-out).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "microchannel/coolant.hpp"
#include "microchannel/duct.hpp"
#include "twophase/channel_march.hpp"
#include "twophase/refrigerant.hpp"

int main() {
  using namespace tac3d;
  using namespace tac3d::twophase;

  bench::banner(
      "TWO-PHASE vs SINGLE-PHASE - flow rate and pumping energy",
      "two-phase flow rate 1/5-1/10 of water; ~80-90% lower pumping "
      "energy in the micro-channels (Section III)");

  // Agostini test section: 134 channels, 67 um wide, 680 um tall,
  // 92 um fins (pitch 159 um), 10 mm heated length, 50 W/cm2 base flux.
  const microchannel::RectDuct duct{um(67.0), um(680.0)};
  const double pitch = um(67.0 + 92.0);
  const double length = mm(10.0);
  const double q_flux = w_per_cm2(50.0);
  const double q_channel_heat = q_flux * pitch * length;
  const int steps = 50;

  // --- single-phase water sized for a 5 K rise.
  const double dt_water = 5.0;
  const auto water = microchannel::water(celsius_to_kelvin(27.0));
  const double m_dot_water =
      q_channel_heat / (water.specific_heat * dt_water);
  const double q_water = m_dot_water / water.density;
  const double dp_water =
      microchannel::pressure_drop(duct, length, q_water, water);
  const double pump_water = dp_water * q_water;

  TextTable t;
  t.set_header({"Coolant", "Mass flow [mg/s]", "dP [kPa]",
                "Pump power/channel [uW]", "Exit state"});
  t.add_row({"water (single-phase, 5K rise)", fmt(m_dot_water * 1e6, 2),
             fmt(dp_water / 1e3, 3), fmt(pump_water * 1e6, 2),
             "liquid, +" + fmt(dt_water, 1) + " K"});

  for (const Refrigerant* ref :
       {&Refrigerant::r134a(), &Refrigerant::r236fa(),
        &Refrigerant::r245fa()}) {
    const double t_sat = celsius_to_kelvin(30.0);
    const double x_out = 0.7;
    const double m_dot = q_channel_heat / (x_out * ref->latent_heat(t_sat));

    ChannelMarchInput in;
    in.refrigerant = ref;
    in.duct = duct;
    in.length = length;
    in.steps = steps;
    in.mass_flow = m_dot;
    in.inlet_pressure = ref->saturation_pressure(t_sat);
    in.heated_width = pitch;
    in.heat_flux.assign(steps, q_flux);
    const auto res = march_channel(in);

    const double q_vol = m_dot / ref->liquid_density(t_sat);
    const double pump = res.pressure_drop * q_vol;
    t.add_row({ref->name(), fmt(m_dot * 1e6, 2),
               fmt(res.pressure_drop / 1e3, 3), fmt(pump * 1e6, 2),
               "x=" + fmt(res.quality.back(), 2) + ", " +
                   fmt(kelvin_to_celsius(res.outlet_t_sat) - 30.0, 2) +
                   " K sat drop"});

    if (ref == &Refrigerant::r134a()) {
      bench::result_line("Water/R134a mass-flow ratio",
                         m_dot_water / m_dot, "x",
                         "5-10x (refrigerant needs 1/5-1/10)");
      // The paper's basis: "pumping power to push the coolant through
      // the micro-channels is directly proportional to the flow rate".
      bench::result_line("Pump-network energy saving (linear in flow)",
                         100.0 * (1.0 - q_vol / q_water), "%", "80-90%");
      bench::result_line("Channel hydraulic power saving (dP*Q)",
                         100.0 * (1.0 - pump / pump_water), "%",
                         ">= the above");
    }
  }
  std::cout << t << '\n';

  std::cout << "Latent heat dominates: ~"
            << fmt(Refrigerant::r134a().latent_heat(
                       celsius_to_kelvin(50.0)) /
                       1e3,
                   0)
            << " kJ/kg for R134a at 50 C vs water's 4.183 kJ/(kg K) "
               "sensible heat (the paper's 'about 150 kJ/kg' comparison).\n"
               "Note the *negative* saturation-temperature change at the "
               "outlet: the refrigerant leaves colder than it entered.\n";
  return 0;
}
