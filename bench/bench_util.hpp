#pragma once
/// \file bench_util.hpp
/// \brief Shared banner/formatting/timing helpers for the
/// paper-reproduction bench binaries — one stopwatch and one table
/// style instead of per-bench copies.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "power/workloads.hpp"
#include "sim/sweep.hpp"

namespace tac3d::bench {

/// Print the standard experiment banner: which paper artifact this
/// binary regenerates and what the paper reports.
inline void banner(const std::string& experiment_id,
                   const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=========\n"
            << experiment_id << '\n'
            << "Paper reference: " << paper_claim << '\n'
            << "==============================================================="
               "=========\n\n";
}

/// Print a named scalar result line.
inline void result_line(const std::string& name, double value,
                        const std::string& unit,
                        const std::string& paper_value = "") {
  std::cout << "  " << name << ": " << value << ' ' << unit;
  if (!paper_value.empty()) std::cout << "   [paper: " << paper_value << "]";
  std::cout << '\n';
}

/// Wall-clock stopwatch shared by the bench binaries: the obs layer's
/// steady-clock stopwatch (monotonicity asserted there), so every
/// bench and the telemetry subsystem read one clock source.
using Stopwatch = obs::Stopwatch;

/// Print the standard sweep footer: how many scenarios ran, on how many
/// workers, in how much wall time.
inline void sweep_footer(std::size_t scenarios, int jobs,
                         double wall_seconds) {
  std::cout << "Ran " << scenarios << " scenarios on " << jobs
            << " worker(s) in " << wall_seconds
            << " s (set TAC3D_JOBS to pin the worker count).\n";
}

/// Minimal ordered JSON object builder for the machine-readable
/// BENCH_*.json artifacts (steps/sec, scenarios/sec, time breakdowns).
/// Insertion order is preserved; values are numbers, strings or nested
/// objects. No external dependency, enough structure for dashboards and
/// regression scripts to diff.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      // inf/nan are not valid JSON tokens; keep the artifact parseable.
      fields_.emplace_back(key, "null");
      return *this;
    }
    std::ostringstream os;
    os.precision(10);
    os << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }

  JsonObject& set(const std::string& key, std::int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }

  JsonObject& set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escape(value) + "\"");
    return *this;
  }

  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }

  JsonObject& set(const std::string& key, const JsonObject& obj) {
    fields_.emplace_back(key, obj.str(1));
    return *this;
  }

  /// Render with two-space indentation at nesting \p depth.
  std::string str(int depth = 0) const {
    const std::string pad(static_cast<std::size_t>(depth + 1) * 2, ' ');
    const std::string closing_pad(static_cast<std::size_t>(depth) * 2, ' ');
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += pad + "\"" + escape(fields_[i].first) + "\": " +
             fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += closing_pad + "}";
    return out;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write \p obj to \p path (final newline included); prints the path so
/// CI logs show where the artifact landed.
inline void write_json(const std::string& path, const JsonObject& obj) {
  std::ofstream out(path);
  out << obj.str() << '\n';
  std::cout << "Wrote " << path << '\n';
}

/// The paper's seven stack x policy configurations over the four
/// average-case workloads plus the maximum-utilization benchmark —
/// the scenario set behind Figs. 6 and 7.
inline std::vector<sim::Scenario> fig67_scenarios(int trace_seconds) {
  auto workloads = power::average_case_workloads();
  workloads.push_back(power::WorkloadKind::kMaxUtil);
  return sim::ScenarioMatrix::paper_fig67()
      .workloads(workloads)
      .trace_seconds(trace_seconds)
      .build();
}

/// Stack x policy cell key of a scenario ("2-tier LC_FUZZY").
inline std::string config_key(const sim::Scenario& s) {
  return std::to_string(s.tiers) + "-tier " + sim::policy_label(s.policy);
}

/// Per-configuration accumulators in first-encounter (matrix = paper)
/// order, remembering which cells saw a failed run so reports can mark
/// them invalid instead of printing skewed averages.
template <class Acc>
class ConfigCells {
 public:
  Acc& at(const std::string& key) {
    if (!cells_.count(key)) order_.push_back(key);
    return cells_[key];
  }

  void mark_failed(const std::string& key) {
    at(key);
    failed_.insert(key);
  }

  bool failed(const std::string& key) const { return failed_.count(key) > 0; }
  const std::vector<std::string>& order() const { return order_; }

 private:
  std::map<std::string, Acc> cells_;
  std::set<std::string> failed_;
  std::vector<std::string> order_;
};

}  // namespace tac3d::bench
