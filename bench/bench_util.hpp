#pragma once
/// \file bench_util.hpp
/// \brief Shared banner/formatting helpers for the paper-reproduction
/// bench binaries.

#include <iostream>
#include <string>

namespace tac3d::bench {

/// Print the standard experiment banner: which paper artifact this
/// binary regenerates and what the paper reports.
inline void banner(const std::string& experiment_id,
                   const std::string& paper_claim) {
  std::cout << "==============================================================="
               "=========\n"
            << experiment_id << '\n'
            << "Paper reference: " << paper_claim << '\n'
            << "==============================================================="
               "=========\n\n";
}

/// Print a named scalar result line.
inline void result_line(const std::string& name, double value,
                        const std::string& unit,
                        const std::string& paper_value = "") {
  std::cout << "  " << name << ": " << value << ' ' << unit;
  if (!paper_value.empty()) std::cout << "   [paper: " << paper_value << "]";
  std::cout << '\n';
}

}  // namespace tac3d::bench
