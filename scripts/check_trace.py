#!/usr/bin/env python3
"""Validate a TAC3D_TRACE Chrome-trace-event JSON artifact.

Checks, in order:

1. The file parses as JSON and has the Chrome trace-event object shape:
   a top-level object with a "traceEvents" list (the format Perfetto and
   chrome://tracing load directly).
2. Every event carries the required fields (name, ph, ts, pid, tid),
   phases are only B/E, and timestamps are non-negative numbers.
3. Per-thread span discipline: within each tid, B/E events form a
   properly nested stack — every E matches the name of the most recent
   unclosed B, nothing closes an empty stack, and nothing is left open
   at the end. (The C++ side emits spans through an RAII guard, so a
   violation means the trace writer — not the instrumentation — broke.)
4. Per-thread timestamps are monotonically non-decreasing (the writer
   serializes each thread's buffer in record order off one steady
   clock).
5. All --require NAME span names appear somewhere in the trace. CI uses
   this to assert a traced mini-sweep actually exercised the sweep,
   bank, solver, and batched control-tail phases.

Usage: check_trace.py TRACE.json [--require sweep/job --require ...]
Exit status: 0 = valid, 1 = invalid trace, 2 = usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check(path, required):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: error reading {path}: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents is not a list")
    if not events:
        return fail("trace contains no events")

    stacks = defaultdict(list)   # tid -> [span names]
    last_ts = {}                 # tid -> last timestamp seen
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                return fail(f"event {i} missing required field '{field}'")
        name, ph, ts, tid = ev["name"], ev["ph"], ev["ts"], ev["tid"]
        if ph not in ("B", "E"):
            return fail(f"event {i} has phase '{ph}' (only B/E are emitted)")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"event {i} has bad timestamp {ts!r}")
        if tid in last_ts and ts < last_ts[tid]:
            return fail(f"event {i} (tid {tid}) goes back in time: "
                        f"{ts} after {last_ts[tid]}")
        last_ts[tid] = ts
        names.add(name)
        if ph == "B":
            stacks[tid].append(name)
        else:
            if not stacks[tid]:
                return fail(f"event {i}: E '{name}' on tid {tid} "
                            f"with no open span")
            top = stacks[tid].pop()
            if top != name:
                return fail(f"event {i}: E '{name}' on tid {tid} "
                            f"closes open span '{top}' (mis-nested)")
    for tid, stack in stacks.items():
        if stack:
            return fail(f"tid {tid} ends with unclosed span(s): {stack}")

    missing = [n for n in required if n not in names]
    if missing:
        return fail(f"required span name(s) absent: {', '.join(missing)}; "
                    f"trace has: {', '.join(sorted(names))}")

    print(f"check_trace: OK — {len(events)} events, "
          f"{len(last_ts)} thread(s), {len(names)} distinct span names: "
          f"{', '.join(sorted(names))}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear (repeatable)")
    args = parser.parse_args()
    return check(args.trace, args.require)


if __name__ == "__main__":
    sys.exit(main())
