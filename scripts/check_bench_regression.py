#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a checked-in baseline.

Two layers of gating, because the baselines are generated on a developer
container while the gate runs on CI-class hardware:

1. Scale-free ratio gates (strict, --threshold, default 30%): pairs of
   throughput metrics from the same JSON object whose quotient is
   machine-independent — flow-modulated vs fixed-flow stepping, cached
   vs uncached and parallel vs serial sweep throughput. A >30% drop in
   such a ratio is a genuine code regression regardless of host speed
   (e.g. the flow-modulated path losing its lazy-refresh advantage).

2. Absolute floor (loose, 3.3x = 1/0.30): any individual "*per_sec*"
   metric collapsing to below 30% of its baseline fails even if every
   metric moved together — machine variance between the baseline host
   and CI runners is far smaller than that, so only a real uniform
   regression (or a broken build) trips it.

3. Fraction ceilings: "*setup_fraction*" metrics (the share of sweep
   busy time spent on scenario construction) and "*tail_fraction*"
   metrics (the share of instrumented stepping time spent in the
   per-step control tail rather than the thermal solves), both emitted
   by bench_sweep_throughput, are fractions, so they are machine-
   independent already. The ScenarioBank drives the cached setup
   fraction toward 0 and the lane-fused batched tail drives the tail
   fraction down; a fresh value above baseline * (1 + threshold) + 0.05
   means the amortized cost crept back in and fails.

Everything else numeric is reported informationally.

Usage: check_bench_regression.py BASELINE FRESH [--threshold 0.30]
Exit status: 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys

# metric -> same-object reference metric whose quotient is scale-free.
RATIO_GATES = {
    "steps_per_sec_flow_modulated": "steps_per_sec_fixed_flow",
    "parallel_cached_scenarios_per_sec": "serial_cached_scenarios_per_sec",
    "serial_cached_scenarios_per_sec": "serial_nocache_scenarios_per_sec",
    "serial_compile_scenarios_per_sec": "serial_nocache_scenarios_per_sec",
    # Batched lockstep stepping: the batched-vs-serial warm-bank ratio on
    # the seed-extended paper matrix must not collapse (losing it means
    # the multi-lane kernels stopped amortizing the matrix traversal).
    "batched_per_sec": "batched_serial_baseline_per_sec",
    # Staggered-convergence (LC_FUZZY) batch group: the regime mid-solve
    # lane compaction targets — lanes converge at different Krylov
    # iterations, and the fused kernels re-dispatch narrower as they do.
    # Losing this ratio means compaction (or the batched path under it)
    # stopped paying on real multi-iteration solves.
    "batched_fuzzy_group_per_sec": "batched_fuzzy_serial_per_sec",
    # Sweep service: request throughput over the wire vs the same mix
    # run directly through run_sweep on the same thread count. The
    # service pays wire + scheduling overhead (ratio < 1 is expected);
    # the gate fails if that overhead grows, i.e. the ratio collapses
    # relative to the checked-in baseline.
    "service_requests_per_sec": "service_direct_requests_per_sec",
}

ABSOLUTE_FLOOR = 0.30  # fresh/baseline below this always fails

# Telemetry must be near-free: the warm-serial sweep with metrics
# publication enabled must sustain at least this fraction of the same
# binary's publication-disabled throughput. The A/B runs inside one
# bench invocation, so the ratio is machine-independent and gated
# against this absolute floor, not against the baseline file.
TELEMETRY_OVERHEAD_FLOOR = 0.97

# Additive slack of the setup_fraction / tail_fraction ceilings:
# fractions this close to the baseline are timer noise on
# sub-millisecond phases, not a cost regression.
FRACTION_SLACK = 0.05

# Limit-cycle replay (bench_sweep_throughput's long-horizon periodic
# leg): replaying verified cycles instead of re-solving must sustain at
# least this steps/sec multiple over step-everything. Like the telemetry
# gate the A/B runs inside one bench invocation, so the ratio is
# machine-independent and gated absolutely. The leg is mandatory: a
# baseline that carries replay_speedup and a fresh run that lost it
# (field missing or null) fails — silently dropping the leg must not
# read as a pass.
REPLAY_SPEEDUP_FLOOR = 10.0


def numeric_leaves(tree, prefix=""):
    """Yield (dotted_key, value) for every numeric leaf of a JSON tree."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from numeric_leaves(value, f"{prefix}{key}.")
    elif isinstance(tree, bool):
        return
    elif isinstance(tree, (int, float)):
        yield prefix.rstrip("."), float(tree)


def null_leaves(tree, prefix=""):
    """Yield the dotted key of every explicit JSON null leaf. The bench
    binaries emit null for legs a host cannot measure (e.g. the
    parallel sweep leg on a single-core runner), which is a deliberate
    "skipped" marker, not a missing metric."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from null_leaves(value, f"{prefix}{key}.")
    elif tree is None:
        yield prefix.rstrip(".")


def leaf_name(dotted):
    return dotted.rsplit(".", 1)[-1]


def sibling(dotted, name):
    head, _, _ = dotted.rpartition(".")
    return f"{head}.{name}" if head else name


def check(baseline_path, fresh_path, threshold):
    """Run the full gate; returns the process exit code (0/1/2)."""
    try:
        with open(baseline_path) as f:
            baseline_tree = json.load(f)
        with open(fresh_path) as f:
            fresh_tree = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    baseline = dict(numeric_leaves(baseline_tree))
    fresh = dict(numeric_leaves(fresh_tree))
    fresh_skipped = set(null_leaves(fresh_tree))

    failures = []

    print(f"{'metric':58s} {'baseline':>14s} {'fresh':>14s} {'ratio':>7s}")
    for key in sorted(baseline):
        gated = ("per_sec" in key or "setup_fraction" in key
                 or "tail_fraction" in key)
        if key in fresh_skipped:
            # An explicit null marks a leg this host skipped (e.g. the
            # parallel leg on one core) — informational, not a failure.
            print(f"{key:58s} {baseline[key]:14.4g} {'skipped':>14s}")
            continue
        if key not in fresh:
            print(f"{key:58s} {baseline[key]:14.4g} {'MISSING':>14s}")
            if gated:
                failures.append(f"{key}: missing from fresh run")
            continue
        old, new = baseline[key], fresh[key]
        ratio = new / old if old else float("inf")
        flag = "" if gated else "  (informational)"
        if "per_sec" in key and old > 0 and ratio < ABSOLUTE_FLOOR:
            failures.append(
                f"{key}: {new:.4g} collapsed to {ratio:.2f}x of baseline "
                f"{old:.4g} (absolute floor {ABSOLUTE_FLOOR:.2f}x)")
            flag = "  << COLLAPSE"
        if "setup_fraction" in key or "tail_fraction" in key:
            what = ("construction cost" if "setup_fraction" in key
                    else "control-tail share")
            ceiling = old * (1.0 + threshold) + FRACTION_SLACK
            if new > ceiling:
                failures.append(
                    f"{key}: {new:.4g} exceeds ceiling {ceiling:.4g} "
                    f"(baseline {old:.4g} — {what} crept back)")
                flag = "  << FRACTION CREEP"
        print(f"{key:58s} {old:14.4g} {new:14.4g} {ratio:7.2f}{flag}")

    print("\nScale-free ratio gates "
          f"(fail below {1.0 - threshold:.2f}x of baseline ratio):")
    for key in sorted(baseline):
        ref_name = RATIO_GATES.get(leaf_name(key))
        if ref_name is None:
            continue
        ref = sibling(key, ref_name)
        if not all(k in d and d[k] > 0
                   for k in (key, ref) for d in (baseline, fresh)):
            continue
        base_ratio = baseline[key] / baseline[ref]
        fresh_ratio = fresh[key] / fresh[ref]
        rel = fresh_ratio / base_ratio
        flag = ""
        if rel < 1.0 - threshold:
            failures.append(
                f"{key} / {ref_name}: ratio {fresh_ratio:.4g} is "
                f"{100 * (1 - rel):.1f}% below baseline {base_ratio:.4g}")
            flag = "  << REGRESSION"
        scope = key.rpartition(".")[0] or "(top level)"
        print(f"  {leaf_name(key)}/{ref_name} [{scope}]: "
              f"{base_ratio:.4g} -> {fresh_ratio:.4g} ({rel:.2f}x){flag}")

    telemetry = [(k, v) for k, v in sorted(fresh.items())
                 if leaf_name(k) == "telemetry_overhead_ratio"]
    if telemetry:
        print(f"\nTelemetry overhead gate (absolute, on/off >= "
              f"{TELEMETRY_OVERHEAD_FLOOR:.2f}x):")
        for key, value in telemetry:
            flag = ""
            if value < TELEMETRY_OVERHEAD_FLOOR:
                failures.append(
                    f"{key}: {value:.4g} below telemetry overhead floor "
                    f"{TELEMETRY_OVERHEAD_FLOOR:.2f} (registry publication "
                    f"is no longer near-free)")
                flag = "  << OVERHEAD"
            print(f"  {key}: {value:.4g}{flag}")

    replay_keys = sorted(
        {k for k in baseline if leaf_name(k) == "replay_speedup"} |
        {k for k in fresh if leaf_name(k) == "replay_speedup"})
    if replay_keys:
        print(f"\nLimit-cycle replay gate (absolute, on/off >= "
              f"{REPLAY_SPEEDUP_FLOOR:.1f}x):")
        for key in replay_keys:
            if key not in fresh:
                how = "null" if key in fresh_skipped else "missing"
                failures.append(
                    f"{key}: {how} in fresh run — the replay leg is "
                    f"mandatory and must be measured")
                print(f"  {key}: {how.upper()}  << NOT MEASURED")
                continue
            value = fresh[key]
            flag = ""
            if value < REPLAY_SPEEDUP_FLOOR:
                failures.append(
                    f"{key}: {value:.4g} below replay speedup floor "
                    f"{REPLAY_SPEEDUP_FLOOR:.1f} (fast-forwarding locked "
                    f"cycles no longer beats re-solving)")
                flag = "  << SLOW"
            print(f"  {key}: {value:.4g}{flag}")

    if failures:
        print("\nThroughput regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nNo throughput regression beyond "
          f"{100 * threshold:.0f}% (ratio) / "
          f"{100 * (1 - ABSOLUTE_FLOOR):.0f}% (absolute) tolerance.")
    return 0


def self_test():
    """Exercise the gate against synthetic JSONs: a healthy run must
    pass, a collapsed ratio must fail, and a gated metric vanishing from
    the fresh run must fail. Run by CI before the real gates so a broken
    gate script cannot silently wave regressions through."""
    import tempfile

    healthy = {
        "bench": "service",
        "service_requests_per_sec": 13.0,
        "service_direct_requests_per_sec": 17.0,
        "p99_ttfr_ms": 100.0,
        "batched_tail_fraction": 0.20,
        "telemetry_overhead_ratio": 0.99,
        "replay_speedup": 18.0,
    }
    collapsed = dict(healthy, service_requests_per_sec=5.0)
    missing = {k: v for k, v in healthy.items()
               if k != "service_requests_per_sec"}
    # A host that cannot run a leg emits null for its columns; the gate
    # must read that as "skipped here", not as a vanished metric.
    par_base = dict(healthy,
                    parallel_cached_scenarios_per_sec=10.0,
                    serial_cached_scenarios_per_sec=6.0,
                    serial_nocache_scenarios_per_sec=1.0)
    par_skipped = dict(par_base, parallel_cached_scenarios_per_sec=None)
    # The replay leg, by contrast, runs everywhere: losing the field —
    # or nulling it — must fail, as must a collapsed speedup.
    replay_slow = dict(healthy, replay_speedup=4.0)
    replay_missing = {k: v for k, v in healthy.items()
                      if k != "replay_speedup"}
    replay_null = dict(healthy, replay_speedup=None)
    # Ceiling at threshold 0.30: 0.20 * 1.30 + 0.05 = 0.31.
    tail_ok = dict(healthy, batched_tail_fraction=0.30)
    tail_creep = dict(healthy, batched_tail_fraction=0.40)
    # The telemetry gate is absolute (floor 0.97), so the fresh value
    # alone decides: 0.975 squeaks by, 0.90 fails.
    telem_ok = dict(healthy, telemetry_overhead_ratio=0.975)
    telem_slow = dict(healthy, telemetry_overhead_ratio=0.90)

    cases = [
        ("healthy fresh run passes", healthy, healthy, 0),
        ("collapsed service/direct ratio fails", healthy, collapsed, 1),
        ("gated metric missing from fresh run fails", healthy, missing, 1),
        ("tail fraction within ceiling passes", healthy, tail_ok, 0),
        ("tail fraction past ceiling fails", healthy, tail_creep, 1),
        ("telemetry overhead above floor passes", healthy, telem_ok, 0),
        ("telemetry overhead below floor fails", healthy, telem_slow, 1),
        ("null skipped-leg marker passes", par_base, par_skipped, 0),
        ("replay speedup below floor fails", healthy, replay_slow, 1),
        ("replay speedup missing from fresh fails", healthy,
         replay_missing, 1),
        ("replay speedup nulled in fresh fails", healthy, replay_null, 1),
    ]
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for i, (name, base, fresh, expected) in enumerate(cases):
            base_path = f"{tmp}/base_{i}.json"
            fresh_path = f"{tmp}/fresh_{i}.json"
            with open(base_path, "w") as f:
                json.dump(base, f)
            with open(fresh_path, "w") as f:
                json.dump(fresh, f)
            print(f"--- self-test: {name}")
            got = check(base_path, fresh_path, threshold=0.30)
            if got != expected:
                failures.append(f"{name}: exit {got}, expected {expected}")
            print()
    if failures:
        print("self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(cases)} cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum allowed fractional drop of a "
                             "scale-free throughput ratio")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate itself catches pass/fail/"
                             "missing-field cases, then exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        parser.error("baseline and fresh are required unless --self-test")
    return check(args.baseline, args.fresh, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
