#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a checked-in baseline.

Two layers of gating, because the baselines are generated on a developer
container while the gate runs on CI-class hardware:

1. Scale-free ratio gates (strict, --threshold, default 30%): pairs of
   throughput metrics from the same JSON object whose quotient is
   machine-independent — flow-modulated vs fixed-flow stepping, cached
   vs uncached and parallel vs serial sweep throughput. A >30% drop in
   such a ratio is a genuine code regression regardless of host speed
   (e.g. the flow-modulated path losing its lazy-refresh advantage).

2. Absolute floor (loose, 3.3x = 1/0.30): any individual "*per_sec*"
   metric collapsing to below 30% of its baseline fails even if every
   metric moved together — machine variance between the baseline host
   and CI runners is far smaller than that, so only a real uniform
   regression (or a broken build) trips it.

3. Setup-fraction ceiling: "*setup_fraction*" metrics (the share of
   sweep busy time spent on scenario construction, emitted by
   bench_sweep_throughput) are fractions, so they are machine-
   independent already. The ScenarioBank drives the cached fraction
   toward 0; a fresh value above baseline * (1 + threshold) + 0.05
   means construction cost crept back in and fails.

Everything else numeric is reported informationally.

Usage: check_bench_regression.py BASELINE FRESH [--threshold 0.30]
Exit status: 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys

# metric -> same-object reference metric whose quotient is scale-free.
RATIO_GATES = {
    "steps_per_sec_flow_modulated": "steps_per_sec_fixed_flow",
    "parallel_cached_scenarios_per_sec": "serial_cached_scenarios_per_sec",
    "serial_cached_scenarios_per_sec": "serial_nocache_scenarios_per_sec",
    "serial_compile_scenarios_per_sec": "serial_nocache_scenarios_per_sec",
    # Batched lockstep stepping: the batched-vs-serial warm-bank ratio on
    # the seed-extended paper matrix must not collapse (losing it means
    # the multi-lane kernels stopped amortizing the matrix traversal).
    "batched_per_sec": "batched_serial_baseline_per_sec",
    # Staggered-convergence (LC_FUZZY) batch group: the regime mid-solve
    # lane compaction targets — lanes converge at different Krylov
    # iterations, and the fused kernels re-dispatch narrower as they do.
    # Losing this ratio means compaction (or the batched path under it)
    # stopped paying on real multi-iteration solves.
    "batched_fuzzy_group_per_sec": "batched_fuzzy_serial_per_sec",
}

ABSOLUTE_FLOOR = 0.30  # fresh/baseline below this always fails

# Additive slack of the setup_fraction ceiling: fractions this close to
# the baseline are timer noise on sub-millisecond setups, not a
# construction-cost regression.
SETUP_FRACTION_SLACK = 0.05


def numeric_leaves(tree, prefix=""):
    """Yield (dotted_key, value) for every numeric leaf of a JSON tree."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from numeric_leaves(value, f"{prefix}{key}.")
    elif isinstance(tree, bool):
        return
    elif isinstance(tree, (int, float)):
        yield prefix.rstrip("."), float(tree)


def leaf_name(dotted):
    return dotted.rsplit(".", 1)[-1]


def sibling(dotted, name):
    head, _, _ = dotted.rpartition(".")
    return f"{head}.{name}" if head else name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum allowed fractional drop of a "
                             "scale-free throughput ratio")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = dict(numeric_leaves(json.load(f)))
        with open(args.fresh) as f:
            fresh = dict(numeric_leaves(json.load(f)))
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    failures = []

    print(f"{'metric':58s} {'baseline':>14s} {'fresh':>14s} {'ratio':>7s}")
    for key in sorted(baseline):
        gated = "per_sec" in key or "setup_fraction" in key
        if key not in fresh:
            print(f"{key:58s} {baseline[key]:14.4g} {'MISSING':>14s}")
            if gated:
                failures.append(f"{key}: missing from fresh run")
            continue
        old, new = baseline[key], fresh[key]
        ratio = new / old if old else float("inf")
        flag = "" if gated else "  (informational)"
        if "per_sec" in key and old > 0 and ratio < ABSOLUTE_FLOOR:
            failures.append(
                f"{key}: {new:.4g} collapsed to {ratio:.2f}x of baseline "
                f"{old:.4g} (absolute floor {ABSOLUTE_FLOOR:.2f}x)")
            flag = "  << COLLAPSE"
        if "setup_fraction" in key:
            ceiling = old * (1.0 + args.threshold) + SETUP_FRACTION_SLACK
            if new > ceiling:
                failures.append(
                    f"{key}: {new:.4g} exceeds ceiling {ceiling:.4g} "
                    f"(baseline {old:.4g} — construction cost crept back)")
                flag = "  << SETUP CREEP"
        print(f"{key:58s} {old:14.4g} {new:14.4g} {ratio:7.2f}{flag}")

    print("\nScale-free ratio gates "
          f"(fail below {1.0 - args.threshold:.2f}x of baseline ratio):")
    for key in sorted(baseline):
        ref_name = RATIO_GATES.get(leaf_name(key))
        if ref_name is None:
            continue
        ref = sibling(key, ref_name)
        if not all(k in d and d[k] > 0
                   for k in (key, ref) for d in (baseline, fresh)):
            continue
        base_ratio = baseline[key] / baseline[ref]
        fresh_ratio = fresh[key] / fresh[ref]
        rel = fresh_ratio / base_ratio
        flag = ""
        if rel < 1.0 - args.threshold:
            failures.append(
                f"{key} / {ref_name}: ratio {fresh_ratio:.4g} is "
                f"{100 * (1 - rel):.1f}% below baseline {base_ratio:.4g}")
            flag = "  << REGRESSION"
        scope = key.rpartition(".")[0] or "(top level)"
        print(f"  {leaf_name(key)}/{ref_name} [{scope}]: "
              f"{base_ratio:.4g} -> {fresh_ratio:.4g} ({rel:.2f}x){flag}")

    if failures:
        print("\nThroughput regressions detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nNo throughput regression beyond "
          f"{100 * args.threshold:.0f}% (ratio) / "
          f"{100 * (1 - ABSOLUTE_FLOOR):.0f}% (absolute) tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
